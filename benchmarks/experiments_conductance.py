"""Experiments about the weighted-conductance definitions and structures.

* E1  — Theorem 5 sandwich across graph families,
* E9  — Theorem 20 / Lemma 19 spanner quality (size, out-degree, stretch),
* E14 — structural checks: the T(k) schedule and DTG iteration growth.
"""

from __future__ import annotations

import math

from repro.analysis import ResultTable, loglog_slope
from repro.core import check_theorem5
from repro.gossip import dtg_local_broadcast, pattern_schedule
from repro.graphs import (
    assign_latencies,
    baswana_sen_spanner,
    bimodal_latency,
    clique,
    cycle_graph,
    dumbbell,
    erdos_renyi,
    grid_graph,
    power_law_latency,
    random_regular_expander,
    spanner_stretch,
    two_cluster_slow_bridge,
    uniform_latency,
    weighted_erdos_renyi,
)

__all__ = ["experiment_e1_theorem5", "experiment_e9_spanner_quality", "experiment_e14_structures"]


def _small_families(quick: bool):
    """Named small graphs for exact conductance computation."""
    sizes = [8, 10, 12] if not quick else [8, 10]
    families = []
    for n in sizes:
        families.append((f"clique-{n}-uniform", assign_latencies(clique(n), uniform_latency(1, 32), seed=n)))
        families.append((f"clique-{n}-bimodal", assign_latencies(clique(n), bimodal_latency(1, 64, 0.5), seed=n)))
        families.append((f"cycle-{n}-uniform", assign_latencies(cycle_graph(n), uniform_latency(1, 16), seed=n)))
        families.append((f"er-{n}-powerlaw", assign_latencies(erdos_renyi(n, 0.4, seed=n), power_law_latency(2.0, 256), seed=n)))
    families.append(("slow-bridge-8", two_cluster_slow_bridge(4, fast_latency=1, slow_latency=32)))
    families.append(("slow-bridge-10", two_cluster_slow_bridge(5, fast_latency=1, slow_latency=128)))
    families.append(("dumbbell-10", dumbbell(5, bridge_latency=16)))
    return families


def experiment_e1_theorem5(quick: bool = False) -> ResultTable:
    """E1: verify the Theorem 5 sandwich (φ*/2ℓ* ≤ φ_avg ≤ L·φ*/ℓ*) exactly."""
    table = ResultTable(title="E1: Theorem 5 — phi* vs phi_avg across graph families (exact)")
    lower_ok = 0
    upper_ok = 0
    total = 0
    for name, graph in _small_families(quick):
        report = check_theorem5(graph)
        total += 1
        lower_ok += int(report.lower_holds())
        upper_ok += int(report.upper_holds())
        table.add_row(
            family=name,
            n=graph.num_nodes,
            lmax=graph.max_latency(),
            phi_star=round(report.phi_star, 4),
            ell_star=report.ell_star,
            phi_avg=round(report.phi_avg, 5),
            lower=round(report.lower, 5),
            upper=round(report.upper, 5),
            lower_holds=report.lower_holds(),
            upper_holds=report.upper_holds(),
        )
    table.add_note(f"lower bound held on {lower_ok}/{total} instances (paper: always; proof sound)")
    table.add_note(
        f"claimed upper bound held on {upper_ok}/{total} instances "
        "(see repro.core.relation for the known gap in the paper's proof)"
    )
    return table


def experiment_e9_spanner_quality(quick: bool = False) -> ResultTable:
    """E9: Theorem 20 — spanner size O(n log n), out-degree O(log n), stretch O(log n)."""
    table = ResultTable(title="E9: Baswana-Sen directed spanner quality (Theorem 20 / Lemma 19)")
    sizes = [32, 64] if quick else [32, 64, 128]
    for n in sizes:
        for family, graph in (
            ("clique", assign_latencies(clique(n), uniform_latency(1, 32), seed=n)),
            ("expander", assign_latencies(random_regular_expander(n, 6, seed=n), uniform_latency(1, 32), seed=n)),
            ("er", weighted_erdos_renyi(n, min(1.0, 8.0 / n), seed=n)),
        ):
            spanner = baswana_sen_spanner(graph, seed=n)
            stretch = spanner_stretch(graph, spanner.graph, seed=n)
            log_n = math.log2(n)
            table.add_row(
                family=family,
                n=n,
                graph_edges=graph.num_edges,
                spanner_edges=spanner.num_edges,
                edges_over_nlogn=round(spanner.num_edges / (n * log_n), 3),
                max_out_degree=spanner.max_out_degree(),
                out_degree_over_logn=round(spanner.max_out_degree() / log_n, 3),
                stretch=round(stretch, 2),
                stretch_guarantee=spanner.guaranteed_stretch(),
            )
    table.add_note("edges_over_nlogn and out_degree_over_logn should stay bounded by a constant as n grows")
    table.add_note("stretch must never exceed the 2k-1 guarantee")
    return table


def experiment_e14_structures(quick: bool = False) -> ResultTable:
    """E14: structural checks — T(k) schedule composition and DTG iteration growth."""
    table = ResultTable(title="E14: pattern schedule T(k) and DTG iteration growth (Figures 4-9 intuition)")
    ks = [1, 2, 4, 8, 16, 32] if not quick else [1, 2, 4, 8]
    for k in ks:
        schedule = pattern_schedule(k)
        table.add_row(
            structure="T(k) schedule",
            parameter=k,
            length=len(schedule),
            expected_length=2 * k - 1,
            peak_invocations=schedule.count(k),
            palindrome=schedule == list(reversed(schedule)),
        )
    sizes = [16, 32, 64] if quick else [16, 32, 64, 128]
    iteration_counts = []
    for n in sizes:
        graph = erdos_renyi(n, min(1.0, 6.0 / n), seed=n)
        result = dtg_local_broadcast(graph)
        iteration_counts.append((n, result.iterations))
        table.add_row(
            structure="DTG iterations",
            parameter=n,
            length=result.iterations,
            expected_length=round(math.log2(n), 1),
            peak_invocations=result.rounds,
            palindrome=None,
        )
    if len(iteration_counts) >= 2:
        slope = loglog_slope([n for n, _ in iteration_counts], [max(1, it) for _, it in iteration_counts])
        table.add_note(f"DTG iterations grow with exponent {slope:.2f} in n (logarithmic growth => exponent near 0)")
    table.add_note("T(k) length must equal 2k-1 with a single peak invocation of k-DTG (Lemma 26 structure)")
    return table
