"""Experiments about the weighted-conductance definitions and structures.

* E1  — Theorem 5 sandwich across graph families,
* E9  — Theorem 20 / Lemma 19 spanner quality (size, out-degree, stretch),
* E14 — structural checks: the T(k) schedule and DTG iteration growth,
* E23 — sparse spectral conductance at 10^4–10^6 nodes: estimate
  wall-clock, Cheeger certification, small-n oracle parity, and
  predicted-vs-measured push-pull spreading time.
"""

from __future__ import annotations

import gc as _gc
import math
import time as _time

from repro.analysis import ResultTable, loglog_slope
from repro.core import check_theorem5
from repro.core.conductance import weight_ell_conductance
from repro.core.spectral import (
    LaplacianOperator,
    fiedler_pair,
    ordering_from_embedding,
    spectral_conductance,
    sweep_cut_conductance,
)
from repro.gossip import dtg_local_broadcast, pattern_schedule
from repro.graphs import (
    assign_latencies,
    barabasi_albert_csr,
    baswana_sen_spanner,
    bimodal_latency,
    clique,
    configuration_model_csr,
    constant_latency,
    cycle_graph,
    dumbbell,
    erdos_renyi,
    erdos_renyi_csr,
    grid_graph,
    kronecker_csr,
    power_law_latency,
    random_regular_expander,
    spanner_stretch,
    two_cluster_slow_bridge,
    uniform_latency,
    watts_strogatz_csr,
    weighted_erdos_renyi,
)
from repro.simulation import EdgeEngine, FastEngine, RoundPolicySpec
from repro.simulation.rng import make_numpy_rng

__all__ = [
    "experiment_e1_theorem5",
    "experiment_e9_spanner_quality",
    "experiment_e14_structures",
    "experiment_e23_spectral_scale",
]


def _small_families(quick: bool):
    """Named small graphs for exact conductance computation."""
    sizes = [8, 10, 12] if not quick else [8, 10]
    families = []
    for n in sizes:
        families.append((f"clique-{n}-uniform", assign_latencies(clique(n), uniform_latency(1, 32), seed=n)))
        families.append((f"clique-{n}-bimodal", assign_latencies(clique(n), bimodal_latency(1, 64, 0.5), seed=n)))
        families.append((f"cycle-{n}-uniform", assign_latencies(cycle_graph(n), uniform_latency(1, 16), seed=n)))
        families.append((f"er-{n}-powerlaw", assign_latencies(erdos_renyi(n, 0.4, seed=n), power_law_latency(2.0, 256), seed=n)))
    families.append(("slow-bridge-8", two_cluster_slow_bridge(4, fast_latency=1, slow_latency=32)))
    families.append(("slow-bridge-10", two_cluster_slow_bridge(5, fast_latency=1, slow_latency=128)))
    families.append(("dumbbell-10", dumbbell(5, bridge_latency=16)))
    return families


def experiment_e1_theorem5(quick: bool = False) -> ResultTable:
    """E1: verify the Theorem 5 sandwich (φ*/2ℓ* ≤ φ_avg ≤ L·φ*/ℓ*) exactly."""
    table = ResultTable(title="E1: Theorem 5 — phi* vs phi_avg across graph families (exact)")
    lower_ok = 0
    upper_ok = 0
    total = 0
    for name, graph in _small_families(quick):
        report = check_theorem5(graph)
        total += 1
        lower_ok += int(report.lower_holds())
        upper_ok += int(report.upper_holds())
        table.add_row(
            family=name,
            n=graph.num_nodes,
            lmax=graph.max_latency(),
            phi_star=round(report.phi_star, 4),
            ell_star=report.ell_star,
            phi_avg=round(report.phi_avg, 5),
            lower=round(report.lower, 5),
            upper=round(report.upper, 5),
            lower_holds=report.lower_holds(),
            upper_holds=report.upper_holds(),
        )
    table.add_note(f"lower bound held on {lower_ok}/{total} instances (paper: always; proof sound)")
    table.add_note(
        f"claimed upper bound held on {upper_ok}/{total} instances "
        "(see repro.core.relation for the known gap in the paper's proof)"
    )
    return table


def experiment_e9_spanner_quality(quick: bool = False) -> ResultTable:
    """E9: Theorem 20 — spanner size O(n log n), out-degree O(log n), stretch O(log n)."""
    table = ResultTable(title="E9: Baswana-Sen directed spanner quality (Theorem 20 / Lemma 19)")
    sizes = [32, 64] if quick else [32, 64, 128]
    for n in sizes:
        for family, graph in (
            ("clique", assign_latencies(clique(n), uniform_latency(1, 32), seed=n)),
            ("expander", assign_latencies(random_regular_expander(n, 6, seed=n), uniform_latency(1, 32), seed=n)),
            ("er", weighted_erdos_renyi(n, min(1.0, 8.0 / n), seed=n)),
        ):
            spanner = baswana_sen_spanner(graph, seed=n)
            stretch = spanner_stretch(graph, spanner.graph, seed=n)
            log_n = math.log2(n)
            table.add_row(
                family=family,
                n=n,
                graph_edges=graph.num_edges,
                spanner_edges=spanner.num_edges,
                edges_over_nlogn=round(spanner.num_edges / (n * log_n), 3),
                max_out_degree=spanner.max_out_degree(),
                out_degree_over_logn=round(spanner.max_out_degree() / log_n, 3),
                stretch=round(stretch, 2),
                stretch_guarantee=spanner.guaranteed_stretch(),
            )
    table.add_note("edges_over_nlogn and out_degree_over_logn should stay bounded by a constant as n grows")
    table.add_note("stretch must never exceed the 2k-1 guarantee")
    return table


def experiment_e14_structures(quick: bool = False) -> ResultTable:
    """E14: structural checks — T(k) schedule composition and DTG iteration growth."""
    table = ResultTable(title="E14: pattern schedule T(k) and DTG iteration growth (Figures 4-9 intuition)")
    ks = [1, 2, 4, 8, 16, 32] if not quick else [1, 2, 4, 8]
    for k in ks:
        schedule = pattern_schedule(k)
        table.add_row(
            structure="T(k) schedule",
            parameter=k,
            length=len(schedule),
            expected_length=2 * k - 1,
            peak_invocations=schedule.count(k),
            palindrome=schedule == list(reversed(schedule)),
        )
    sizes = [16, 32, 64] if quick else [16, 32, 64, 128]
    iteration_counts = []
    for n in sizes:
        graph = erdos_renyi(n, min(1.0, 6.0 / n), seed=n)
        result = dtg_local_broadcast(graph)
        iteration_counts.append((n, result.iterations))
        table.add_row(
            structure="DTG iterations",
            parameter=n,
            length=result.iterations,
            expected_length=round(math.log2(n), 1),
            peak_invocations=result.rounds,
            palindrome=None,
        )
    if len(iteration_counts) >= 2:
        slope = loglog_slope([n for n, _ in iteration_counts], [max(1, it) for _, it in iteration_counts])
        table.add_note(f"DTG iterations grow with exponent {slope:.2f} in n (logarithmic growth => exponent near 0)")
    table.add_note("T(k) length must equal 2k-1 with a single peak invocation of k-DTG (Lemma 26 structure)")
    return table


_E23_SEED = 23
#: Exact enumeration runs at the smallest size, the dense-eigh parity check
#: at the second, and the sparse path alone above.
_E23_SIZES = (16, 512, 10_000, 100_000, 1_000_000)
_E23_SIZES_QUICK = (16, 512, 1_024)
#: Largest size the measured push-pull run uses the numpy fast backend;
#: above it the edge-vectorized backend takes over (its home turf).
_E23_EDGE_FROM = 100_000
#: Acceptance budget for one sparse conductance estimate at 10^6 nodes.
_E23_ESTIMATE_BUDGET_SECONDS = 60.0

#: family name -> builder (n, seed) -> CSRGraph with unit latencies (so the
#: paper's predicted spreading time reduces to log2(n)/phi with ell* = 1);
#: knobs fixed per family so rows are comparable across sizes.
_E23_FAMILIES = (
    (
        "erdos-renyi",
        lambda n, seed: erdos_renyi_csr(n, min(1.0, 8.0 / n), constant_latency(1), seed=seed),
    ),
    (
        "barabasi-albert",
        lambda n, seed: barabasi_albert_csr(n, m=3, model=constant_latency(1), seed=seed),
    ),
    (
        "watts-strogatz",
        lambda n, seed: watts_strogatz_csr(n, k=8, rewire=0.1, model=constant_latency(1), seed=seed),
    ),
    (
        "power-law",
        lambda n, seed: configuration_model_csr(
            n, gamma=2.5, min_degree=2, model=constant_latency(1), seed=seed
        ),
    ),
    (
        "kronecker",
        lambda n, seed: kronecker_csr(n, edge_factor=8, model=constant_latency(1), seed=seed),
    ),
)

#: Exhaustive 2^(n-1)-1 cut enumeration is the oracle only at the smallest
#: size (the repo-wide exact-path threshold is 18 nodes).
_E23_EXACT_MAX = 16
#: The dense-eigh-vs-sparse parity size: both solvers run, and their swept
#: conductances must agree within this relative tolerance (the same bound
#: the test suite pins; orderings may differ inside near-degenerate
#: eigenspaces, the swept value is the contract).
_E23_DENSE_PARITY_N = 512
_E23_PARITY_RTOL = 1e-6


def _e23_measured_rounds(graph, seed: int) -> int:
    """One push-pull one-to-all run; returns the measured round count."""
    engine_cls = EdgeEngine if graph.num_nodes >= _E23_EDGE_FROM else FastEngine
    engine = engine_cls(graph)
    rumor = engine.seed_rumor(graph.nodes()[0])
    spec = RoundPolicySpec(
        select="uniform-random",
        gate="all",
        rng=make_numpy_rng(seed, "rep", 0),
    )
    metrics = engine.run(spec, lambda eng: eng.dissemination_complete(rumor))
    return metrics.rounds


def _e23_parity(graph, estimate, n: int) -> str:
    """Oracle agreement column: exact enumeration / dense eigh / n/a."""
    if n <= _E23_EXACT_MAX:
        exact = weight_ell_conductance(graph, graph.max_latency()).value
        lower, upper = estimate.cheeger_interval()
        ok = exact <= estimate.phi + 1e-9 and lower - 1e-9 <= exact <= upper + 1e-9
        return "exact-ok" if ok else "MISMATCH"
    if n == _E23_DENSE_PARITY_N:
        # The routed estimate used the dense oracle at this size; run the
        # sparse iteration explicitly and compare swept conductances.
        snapshot = graph.indexed()
        operator = LaplacianOperator.from_indexed(snapshot)
        pair = fiedler_pair(operator, _E23_SEED, "parity", n, tol=1e-8, max_iters=1000)
        order = ordering_from_embedding(pair.embedding, operator.degrees > 0)
        sweep = sweep_cut_conductance(
            snapshot.indptr, snapshot.indices, order, volume_degrees=snapshot.degrees()
        )
        tolerance = _E23_PARITY_RTOL * max(1.0, abs(estimate.phi))
        return "dense-ok" if abs(sweep.value - estimate.phi) <= tolerance else "MISMATCH"
    return "n/a"


def experiment_e23_spectral_scale(quick: bool = False) -> ResultTable:
    """E23: sparse spectral conductance estimation at million-node scale.

    Every row is one (family, size) pair: the spectral estimate's
    wall-clock, its λ2 + Cheeger interval, an oracle-parity column (exact
    enumeration at n=16, dense-vs-sparse sweep agreement at n=512), and
    predicted-vs-measured push-pull spreading time — predicted is the
    paper's ``log2(n)/φ̂`` (unit latencies make ℓ* = 1), measured is one
    seeded push-pull run to completion.  The headline rows (each family at
    10^6 nodes) carry the acceptance target: one sparse estimate in under
    60 seconds, where the dense path would need a 8 TB matrix.
    """
    table = ResultTable(
        title="E23: sparse spectral conductance — 10^4..10^6 nodes, Cheeger-certified"
    )
    sizes = _E23_SIZES_QUICK if quick else _E23_SIZES
    parity_all = True
    headlines: dict[str, dict] = {}
    for family, builder in _E23_FAMILIES:
        for n in sizes:
            # Reclaim the previous row's multi-GB arrays before timing.
            _gc.collect()
            started = _time.perf_counter()
            graph = builder(n, _E23_SEED)
            build_wall = _time.perf_counter() - started
            started = _time.perf_counter()
            # Residual tolerance relaxes above 10^4 nodes: the Rayleigh
            # quotient's eigenvalue error is O(residual^2), so a 1e-4
            # residual still pins lambda2 to ~1e-8 while saving ~100
            # matvec iterations on the slow-mixing million-node families.
            tol = 1e-6 if n <= 10_000 else 1e-4
            estimate = spectral_conductance(graph, seed=_E23_SEED, tol=tol, max_iters=256)
            estimate_wall = _time.perf_counter() - started
            lower, upper = estimate.cheeger_interval()
            parity = _e23_parity(graph, estimate, n)
            parity_all = parity_all and parity != "MISMATCH"
            predicted = math.log2(n) / estimate.phi if estimate.phi > 0 else math.inf
            measured = _e23_measured_rounds(graph, _E23_SEED)
            row = dict(
                topology=f"{family}-{n}",
                family=family,
                n=n,
                edges=graph.num_edges,
                method=estimate.method,
                lambda2=round(estimate.lambda2, 6),
                cheeger_lo=round(lower, 6),
                cheeger_hi=round(upper, 6),
                phi_hat=round(estimate.phi, 6),
                iterations=estimate.iterations,
                converged=estimate.converged,
                estimate_seconds=round(estimate_wall, 3),
                parity=parity,
                predicted_rounds=round(predicted, 1),
                measured_rounds=measured,
                predicted_over_measured=round(predicted / measured, 2) if measured else None,
                build_seconds=round(build_wall, 3),
            )
            table.add_row(**row)
            headlines[family] = row
    table.add_note("phi_hat is the best sweep/random cut; it upper-bounds the true phi and")
    table.add_note("sits inside [lambda2/2, sqrt(2*lambda2)] (Cheeger).  predicted_rounds is")
    table.add_note("the paper's (ell*/phi*)*log2(n) with unit latencies; measured_rounds is one")
    table.add_note(f"seeded push-pull run (edge backend from n={_E23_EDGE_FROM}).  parity:")
    table.add_note("exact-ok = exhaustive enumeration inside the Cheeger interval and below")
    table.add_note("phi_hat at n=16; dense-ok = dense-eigh vs sparse-LOBPCG swept conductance")
    table.add_note(f"within {_E23_PARITY_RTOL} relative at n={_E23_DENSE_PARITY_N}.")
    # Imported lazily: the registry imports this module at load time.
    from .registry import record_bench

    record_bench(
        "E23",
        {
            "quick": quick,
            "solver": "csr-lobpcg-vs-dense-eigh-oracle",
            "parity": parity_all,
            "estimate_budget_seconds": _E23_ESTIMATE_BUDGET_SECONDS,
            "families": {
                family: {
                    "n": row["n"],
                    "edges": row["edges"],
                    "method": row["method"],
                    "lambda2": row["lambda2"],
                    "phi_hat": row["phi_hat"],
                    "iterations": row["iterations"],
                    "converged": row["converged"],
                    "estimate_seconds": row["estimate_seconds"],
                    "predicted_over_measured": row["predicted_over_measured"],
                }
                for family, row in headlines.items()
            },
        },
    )
    return table
