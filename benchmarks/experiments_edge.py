"""E21 — edge-vectorized round kernel: million-node single-run gossip in seconds.

The edge backend's promise is *single-run throughput at scale*: one
trajectory's round loop vectorized across the whole edge set, where the
fast backend sweeps nodes in Python.  E21 builds one ER graph (mean degree
8) per size, runs push-pull one-to-all dissemination on both backends, and
reports rounds/sec plus edge-throughput (undirected edges × rounds / wall).
The fast oracle runs — and the parity contract is cross-checked bit for
bit — on every size up to ``_FAST_CAP``; above it the edge backend runs
alone (that is the point: the 10^6-node row completes end-to-end in
seconds, where the per-node sweep would take minutes).

The headline row (ER-10^6) carries the acceptance targets: the run
completes end-to-end, and at the largest overlapping size (10^5) the edge
kernel clears ≥ 5× the fast backend's rounds/sec.  The measured rates land
in ``BENCH_e21.json`` at the repository root via
:func:`benchmarks.registry.record_bench`.
"""

from __future__ import annotations

import time as _time
from typing import Optional

from repro.analysis import ResultTable
from repro.graphs import weighted_erdos_renyi
from repro.simulation import EdgeEngine, FastEngine, RoundPolicySpec
from repro.simulation.rng import make_numpy_rng

__all__ = ["experiment_e21_edge_kernel"]

_SEED = 21
_MEAN_DEGREE = 8.0
_SIZES = (10_000, 100_000, 1_000_000)
_SIZES_QUICK = (1_000, 4_000)
#: Largest size the fast oracle runs at (and parity is checked at): the
#: per-node Python sweep costs minutes beyond it, which is what E21 exists
#: to demonstrate, not to wait for.
_FAST_CAP = 100_000


def _single_run(engine_cls, graph, seed: int):
    """One seeded push-pull dissemination run; returns (metrics, wall)."""
    engine = engine_cls(graph)
    rumor = engine.seed_rumor(graph.nodes()[0])
    spec = RoundPolicySpec(
        select="uniform-random", gate="all", rng=make_numpy_rng(seed, "rep", 0)
    )
    started = _time.perf_counter()
    metrics = engine.run(spec, lambda eng: eng.dissemination_complete(rumor))
    return metrics, _time.perf_counter() - started


def experiment_e21_edge_kernel(quick: bool = False) -> ResultTable:
    """E21: single-run throughput of the edge kernel vs the fast backend.

    Every row is one graph size: build time, the edge backend's rounds/sec
    and edge-throughput, the fast backend's rounds/sec (up to the oracle
    cap), their ratio, and a ``parity`` column — ``bit-for-bit`` when the
    two backends' full metrics (per-edge activation counters included)
    matched exactly, ``n/a`` where the oracle did not run.
    """
    table = ResultTable(title="E21: edge-vectorized round kernel — single-run rounds/sec vs fast")
    sizes = _SIZES_QUICK if quick else _SIZES
    parity_all = True
    headline: dict = {}
    speedup_at_cap: Optional[float] = None
    for n in sizes:
        built = _time.perf_counter()
        graph = weighted_erdos_renyi(n, _MEAN_DEGREE / n, seed=_SEED)
        build_wall = _time.perf_counter() - built
        edge_metrics, edge_wall = _single_run(EdgeEngine, graph, _SEED)
        rounds = edge_metrics.rounds
        edge_rate = rounds / edge_wall
        fast_rate = speedup = None
        parity = "n/a"
        if n <= _FAST_CAP:
            fast_metrics, fast_wall = _single_run(FastEngine, graph, _SEED)
            fast_rate = round(fast_metrics.rounds / fast_wall, 1)
            speedup = round(edge_rate * fast_wall / fast_metrics.rounds, 1)
            matched = (
                edge_metrics.as_dict() == fast_metrics.as_dict()
                and edge_metrics.edge_activations == fast_metrics.edge_activations
            )
            parity = "bit-for-bit" if matched else "MISMATCH"
            parity_all = parity_all and matched
            speedup_at_cap = speedup
        row = dict(
            topology=f"er-{n}",
            n=n,
            edges=graph.num_edges,
            rounds=rounds,
            edge_rounds_per_sec=round(edge_rate, 1),
            edges_per_sec=round(rounds * graph.num_edges / edge_wall),
            fast_rounds_per_sec=fast_rate,
            speedup=speedup,
            parity=parity,
            edge_wall_seconds=round(edge_wall, 3),
            build_seconds=round(build_wall, 3),
        )
        table.add_row(**row)
        headline = row
    table.add_note("one ER graph (mean degree 8) per size; push-pull one-to-all dissemination,")
    table.add_note("numpy draws seeded ('rep', 0) on both backends.  edges_per_sec = undirected")
    table.add_note("edges x rounds / wall.  The fast oracle (and the bit-for-bit parity check,")
    table.add_note(f"per-edge activation counters included) runs up to n={_FAST_CAP}; the larger")
    table.add_note("rows are the edge backend's reason to exist")
    # Imported lazily: the registry imports this module at load time.
    from .registry import record_bench

    record_bench(
        "E21",
        {
            "quick": quick,
            "engine": "edge-vs-fast-single-run",
            "parity": parity_all,
            "topology": headline.get("topology"),
            "n": headline.get("n"),
            "rounds": headline.get("rounds"),
            "edge_rounds_per_sec": headline.get("edge_rounds_per_sec"),
            "edges_per_sec": headline.get("edges_per_sec"),
            "edge_wall_seconds": headline.get("edge_wall_seconds"),
            "build_seconds": headline.get("build_seconds"),
            "speedup_at_fast_cap": speedup_at_cap,
        },
    )
    return table
