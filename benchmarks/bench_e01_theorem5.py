"""E1 — Theorem 5: the φ*/φ_avg sandwich across graph families."""

from __future__ import annotations


def test_e1_theorem5(run_experiment_benchmark):
    table = run_experiment_benchmark("E1")
    # The lower bound is sound and must hold on every exact instance.
    assert all(row["lower_holds"] for row in table)
    # The claimed upper bound should hold on the clear majority of instances.
    upper_holds = [row["upper_holds"] for row in table]
    assert sum(upper_holds) >= len(upper_holds) * 0.7
