"""E11 — Theorem 25: Spanner Broadcast vs D·log³ n, known and unknown diameter."""

from __future__ import annotations


def test_e11_spanner_broadcast(run_experiment_benchmark):
    table = run_experiment_benchmark("E11")
    for row in table:
        # The measured time stays within a constant multiple of D log^3 n.
        assert row["known_ratio"] <= 10.0
        # Guess-and-double costs at most a moderate constant-factor overhead.
        assert row["unknown_over_known"] <= 20.0
