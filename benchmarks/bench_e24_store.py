"""E24 — artifact store: build amortization + bit-for-bit cache parity.

The warm (cached) sweep and calibration fit must reproduce their cold
(uncached) counterparts exactly — the ``parity`` column is the contract,
checked in quick mode too.  The wall-clock acceptance targets (>= 5x on
the pinned 10-case x 8-rep n=10^5 sweep, >= 10x on a warm pinned
calibration generation) only bind at full size; the quick smoke's builds
are too small to amortize anything meaningful.
"""

from __future__ import annotations


def test_e24_store(run_experiment_benchmark, quick_mode):
    table = run_experiment_benchmark("E24")
    rows = list(table)
    assert rows, "E24 produced no rows"
    phases = {row["phase"] for row in rows}
    assert phases == {"sweep", "calibration", "generation"}, f"E24 missed a phase: {sorted(phases)}"
    # The non-negotiable contract, in quick mode too: cached and uncached
    # runs are bit-for-bit identical.
    for row in rows:
        assert row["parity"] == "bit-for-bit", (
            f"cache parity violated in {row['phase']}/{row['mode']}: {row['parity']}"
        )
    # The warm store built each distinct digest exactly once.  Hit counts
    # are only visible for the serial calibration phase: the sweep's
    # checkouts happen inside forked pool workers, whose stat increments
    # never propagate back to the parent's store object.
    for phase in ("sweep", "calibration"):
        warm = next(row for row in rows if row["phase"] == phase and row["mode"] == "warm")
        assert warm["builds"] == 1, f"warm {phase} built {warm['builds']}x, expected 1"
    calib_warm = next(row for row in rows if row["phase"] == "calibration" and row["mode"] == "warm")
    assert calib_warm["graph_hits"] >= 1, "warm calibration never hit the cache"
    if quick_mode:
        return
    sweep_warm = next(row for row in rows if row["phase"] == "sweep" and row["mode"] == "warm")
    assert sweep_warm["speedup"] >= 5.0, (
        f"pinned sweep speedup {sweep_warm['speedup']}x below the 5x acceptance target"
    )
    generation_speedups = [row["speedup"] for row in rows if row["phase"] == "generation"]
    assert max(generation_speedups) >= 10.0, (
        f"warm calibration generations peaked at {max(generation_speedups)}x, "
        "below the 10x acceptance target"
    )
