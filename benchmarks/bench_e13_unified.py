"""E13 — Theorem 31 / Corollary 32: the unified strategy and its crossover."""

from __future__ import annotations


def test_e13_unified(run_experiment_benchmark):
    table = run_experiment_benchmark("E13")
    rows = list(table)
    # The unified time equals the better branch on every instance.
    for row in rows:
        assert row["unified_time"] <= row["push_pull_time"] + 1e-9
        assert row["unified_time"] <= row["spanner_time"] + 1e-9
    # Push-pull must win on the well-connected clique instance.
    clique_row = next(row for row in rows if "clique" in row["instance"])
    assert clique_row["winner"] == "push-pull"
