"""Property-based tests (hypothesis) for the weighted-conductance definitions."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    average_weighted_conductance,
    check_theorem5,
    classical_conductance,
    critical_weighted_conductance,
    weight_ell_conductance,
    weighted_conductance_profile,
)
from repro.graphs import WeightedGraph, assign_latencies, erdos_renyi, uniform_latency

# Small connected weighted graphs (exact conductance is exponential in n).
graph_params = st.tuples(
    st.integers(min_value=3, max_value=9),       # n
    st.floats(min_value=0.3, max_value=0.9),     # edge probability
    st.integers(min_value=1, max_value=128),     # max latency
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build_graph(params) -> WeightedGraph:
    n, p, max_latency, seed = params
    base = erdos_renyi(n, p, seed=seed)
    return assign_latencies(base, uniform_latency(1, max_latency), seed=seed)


class TestConductanceProperties:
    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_phi_ell_monotone_in_ell(self, params):
        graph = build_graph(params)
        latencies = graph.distinct_latencies()
        values = [weight_ell_conductance(graph, ell).value for ell in latencies]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_phi_values_in_unit_interval(self, params):
        graph = build_graph(params)
        phi_star, _ell_star = critical_weighted_conductance(graph)
        phi_avg = average_weighted_conductance(graph).value
        classical = classical_conductance(graph).value
        assert 0.0 <= phi_star <= 1.0 + 1e-12
        assert 0.0 <= phi_avg <= 1.0 + 1e-12
        assert 0.0 <= classical <= 1.0 + 1e-12

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_theorem5_sound_bounds_always_hold_exactly(self, params):
        # The lower bound and the witness-cut upper bound are sound for every
        # graph; the paper's claimed L*phi*/ell* upper bound can fail on rare
        # instances (see the reproduction note in repro.core.relation), so it
        # is checked statistically in the E1 benchmark instead.
        graph = build_graph(params)
        report = check_theorem5(graph)
        assert report.exact
        assert report.lower_holds(), (
            f"Theorem 5 lower bound violated on n={graph.num_nodes}: "
            f"lower={report.lower}, phi_avg={report.phi_avg}"
        )
        assert report.witness_upper_holds(), (
            f"witness upper bound violated on n={graph.num_nodes}: "
            f"phi_avg={report.phi_avg}, witness_upper={report.witness_upper}"
        )

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_critical_ratio_is_maximal(self, params):
        graph = build_graph(params)
        profile = weighted_conductance_profile(graph)
        best_ratio = profile.critical_phi / profile.critical_latency
        for ell, phi in profile.phi_by_latency.items():
            assert best_ratio >= phi / ell - 1e-12

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_phi_star_at_most_classical_conductance(self, params):
        # phi_ell is monotone in ell, so phi* <= phi_{lmax} = classical conductance.
        graph = build_graph(params)
        phi_star, _ = critical_weighted_conductance(graph)
        classical = classical_conductance(graph).value
        assert phi_star <= classical + 1e-12

    @given(st.integers(min_value=3, max_value=9), st.integers(min_value=0, max_value=5000))
    @settings(max_examples=25, deadline=None)
    def test_unit_latency_specialisation(self, n, seed):
        # With unit latencies: phi* = classical conductance, phi_avg = half of it.
        graph = erdos_renyi(n, 0.6, seed=seed)
        profile = weighted_conductance_profile(graph)
        assert profile.critical_latency == 1
        assert profile.phi_avg * 2 == profile.critical_phi or abs(
            profile.phi_avg * 2 - profile.critical_phi
        ) < 1e-12
