"""Unit tests for repro.core.bounds (closed-form theoretical bounds)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    GraphParameters,
    extract_parameters,
    lower_bound_dissemination,
    lower_bound_dissemination_phi_avg,
    lower_bound_local_broadcast_conductance,
    lower_bound_local_broadcast_degree,
    upper_bound_latency_discovery_spanner,
    upper_bound_pattern_broadcast,
    upper_bound_push_pull,
    upper_bound_push_pull_phi_avg,
    upper_bound_spanner_broadcast,
    upper_bound_unified,
    upper_bound_unified_phi_avg,
)
from repro.graphs import clique, two_cluster_slow_bridge


@pytest.fixture
def params() -> GraphParameters:
    return GraphParameters(
        n=1024,
        diameter=20.0,
        max_degree=30,
        phi_star=0.1,
        ell_star=4,
        phi_avg=0.02,
        nonempty_classes=3,
        max_latency=64,
    )


class TestParameterExtraction:
    def test_extract_from_clique(self):
        params = extract_parameters(clique(8))
        assert params.n == 8
        assert params.diameter == 1
        assert params.max_degree == 7
        assert params.ell_star == 1
        assert params.nonempty_classes == 1

    def test_extract_from_slow_bridge(self, slow_bridge):
        params = extract_parameters(slow_bridge)
        assert params.max_latency == 16
        assert params.phi_star > 0
        assert params.phi_avg > 0

    def test_log_helpers(self, params):
        assert params.log_n() == pytest.approx(10.0)
        assert params.log_diameter() == pytest.approx(math.log2(20.0))


class TestLowerBounds:
    def test_degree_bound(self, params):
        assert lower_bound_local_broadcast_degree(params) == 30

    def test_conductance_bound(self, params):
        assert lower_bound_local_broadcast_conductance(params) == pytest.approx(1 / 0.1 + 4)

    def test_dissemination_bound_takes_min(self, params):
        assert lower_bound_dissemination(params) == pytest.approx(min(20 + 30, 4 / 0.1))

    def test_dissemination_bound_phi_avg(self, params):
        assert lower_bound_dissemination_phi_avg(params) == pytest.approx(min(50, 1 / 0.02))

    def test_zero_conductance_degenerates_gracefully(self, params):
        degenerate = GraphParameters(
            n=params.n,
            diameter=params.diameter,
            max_degree=params.max_degree,
            phi_star=0.0,
            ell_star=1,
            phi_avg=0.0,
            nonempty_classes=1,
            max_latency=1,
        )
        assert lower_bound_dissemination(degenerate) == 50
        assert math.isinf(lower_bound_local_broadcast_conductance(degenerate))


class TestUpperBounds:
    def test_push_pull_bound(self, params):
        assert upper_bound_push_pull(params) == pytest.approx((4 / 0.1) * 10)

    def test_push_pull_phi_avg_bound(self, params):
        assert upper_bound_push_pull_phi_avg(params) == pytest.approx((3 / 0.02) * 10)

    def test_spanner_bound(self, params):
        assert upper_bound_spanner_broadcast(params) == pytest.approx(20 * 10 ** 3)

    def test_pattern_bound(self, params):
        expected = 20 * 10 ** 2 * math.log2(20)
        assert upper_bound_pattern_broadcast(params) == pytest.approx(expected)

    def test_discovery_bound(self, params):
        assert upper_bound_latency_discovery_spanner(params) == pytest.approx(50 * 1000)

    def test_unified_takes_min(self, params):
        assert upper_bound_unified(params) == pytest.approx(
            min(upper_bound_latency_discovery_spanner(params), upper_bound_push_pull(params))
        )

    def test_unified_phi_avg_takes_min(self, params):
        assert upper_bound_unified_phi_avg(params) == pytest.approx(
            min(upper_bound_latency_discovery_spanner(params), upper_bound_push_pull_phi_avg(params))
        )

    def test_lower_bound_never_exceeds_unified_upper_bound(self, slow_bridge):
        params = extract_parameters(slow_bridge)
        assert lower_bound_dissemination(params) <= upper_bound_unified(params) + 1e-9
