"""Unit tests for repro.core.conductance (exact weighted conductance)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    average_weighted_conductance,
    classical_conductance,
    critical_weighted_conductance,
    cut_average_conductance,
    cut_weight_ell_conductance,
    weight_ell_conductance,
    weighted_conductance_profile,
)
from repro.graphs import (
    Cut,
    GraphError,
    WeightedGraph,
    clique,
    cycle_graph,
    path_graph,
    two_cluster_slow_bridge,
)


class TestWeightEllConductance:
    def test_cut_value_on_triangle(self, triangle):
        cut = Cut.of([0])
        # Node 0 has degree 2 (volume 2); edges to 1 (lat 1) and 2 (lat 4).
        assert cut_weight_ell_conductance(triangle, cut, 1) == pytest.approx(1 / 2)
        assert cut_weight_ell_conductance(triangle, cut, 4) == pytest.approx(2 / 2)

    def test_invalid_ell(self, triangle):
        with pytest.raises(GraphError):
            cut_weight_ell_conductance(triangle, Cut.of([0]), 0)

    def test_unit_clique_matches_classical(self):
        graph = clique(6)
        # Classical conductance of K_n is minimized by the balanced cut:
        # |cut| = (n/2)^2, volume = (n/2)(n-1).
        expected = (3 * 3) / (3 * 5)
        assert weight_ell_conductance(graph, 1).value == pytest.approx(expected)

    def test_phi_ell_monotone_in_ell(self, slow_bridge):
        phi_1 = weight_ell_conductance(slow_bridge, 1).value
        phi_16 = weight_ell_conductance(slow_bridge, 16).value
        assert phi_1 <= phi_16

    def test_slow_bridge_phi1_zero(self, slow_bridge):
        # With only latency-1 edges, the bridge cut has no crossing edges.
        assert weight_ell_conductance(slow_bridge, 1).value == 0.0

    def test_witness_cut_is_minimizing(self, slow_bridge):
        result = weight_ell_conductance(slow_bridge, 16)
        assert result.witness is not None
        recomputed = cut_weight_ell_conductance(slow_bridge, result.witness, 16)
        assert recomputed == pytest.approx(result.value)

    def test_too_large_graph_rejected(self):
        with pytest.raises(GraphError):
            weight_ell_conductance(clique(25), 1)

    def test_edgeless_graph_rejected(self):
        with pytest.raises(GraphError):
            weight_ell_conductance(WeightedGraph(range(3)), 1)


class TestCriticalConductance:
    def test_unit_graph_critical_latency_is_one(self, small_clique):
        phi_star, ell_star = critical_weighted_conductance(small_clique)
        assert ell_star == 1
        assert phi_star == pytest.approx(weight_ell_conductance(small_clique, 1).value)

    def test_slow_bridge_prefers_slow_threshold(self, slow_bridge):
        # phi_1 = 0 so the ratio is maximized at ell = 16 despite the division.
        phi_star, ell_star = critical_weighted_conductance(slow_bridge)
        assert ell_star == 16
        assert phi_star > 0

    def test_fast_alternative_path_prefers_fast_threshold(self):
        # Two cliques joined by MANY slow edges AND one fast edge: phi_1 > 0,
        # and phi_1/1 beats phi_64/64.
        graph = two_cluster_slow_bridge(4, fast_latency=1, slow_latency=64, bridges=4)
        graph.set_latency(0, 4, 1)  # make one bridge fast
        phi_star, ell_star = critical_weighted_conductance(graph)
        assert ell_star == 1

    def test_critical_ratio_dominates_all_latencies(self, triangle):
        phi_star, ell_star = critical_weighted_conductance(triangle)
        for ell in triangle.distinct_latencies():
            phi_ell = weight_ell_conductance(triangle, ell).value
            assert phi_star / ell_star >= phi_ell / ell - 1e-12


class TestAverageConductance:
    def test_cut_average_on_triangle(self, triangle):
        cut = Cut.of([0])
        # Edge latency 1 -> class 1 (weight 1/2); latency 4 -> class 2 (1/4).
        expected = (1 / 2 + 1 / 4) / 2
        assert cut_average_conductance(triangle, cut) == pytest.approx(expected)

    def test_unit_graph_is_half_classical(self, small_clique):
        phi_avg = average_weighted_conductance(small_clique).value
        classical = classical_conductance(small_clique).value
        assert phi_avg == pytest.approx(classical / 2)

    def test_average_leq_any_cut(self, slow_bridge):
        phi_avg = average_weighted_conductance(slow_bridge).value
        for side in ([0], [0, 1], list(range(5))):
            assert phi_avg <= cut_average_conductance(slow_bridge, Cut.of(side)) + 1e-12

    def test_classical_conductance_uses_all_edges(self, slow_bridge):
        classical = classical_conductance(slow_bridge).value
        assert classical > 0


class TestProfile:
    def test_profile_consistency(self, slow_bridge):
        profile = weighted_conductance_profile(slow_bridge)
        assert profile.critical_latency in profile.phi_by_latency
        assert profile.critical_phi == pytest.approx(profile.phi_by_latency[profile.critical_latency])
        assert profile.nonempty_classes == 2
        assert profile.max_latency == 16

    def test_profile_theorem5_bounds(self, slow_bridge):
        profile = weighted_conductance_profile(slow_bridge)
        assert profile.theorem5_holds()
        assert profile.theorem5_lower() <= profile.phi_avg
        assert profile.phi_avg <= profile.theorem5_upper()

    def test_profile_on_cycle(self):
        profile = weighted_conductance_profile(cycle_graph(8))
        # Cycle conductance: balanced cut crosses 2 edges over volume 8.
        assert profile.critical_phi == pytest.approx(2 / 8)
        assert profile.critical_latency == 1

    def test_profile_on_path(self):
        profile = weighted_conductance_profile(path_graph(6))
        # Worst cut severs one end edge: 1 crossing / volume 1 at the endpoint?
        # The minimizing cut is the balanced one: 1 crossing over volume 5.
        assert profile.critical_phi == pytest.approx(1 / 5)
