"""Unit tests for the Lemma 6 gossip-to-guessing-game reduction."""

from __future__ import annotations

import pytest

from repro.graphs import (
    GraphError,
    guessing_gadget,
    symmetric_guessing_gadget,
    theorem9_network,
    theorem10_network,
)
from repro.guessing_game import run_gossip_reduction


class TestReduction:
    def test_reduction_holds_on_theorem9_gadget(self):
        graph, info = theorem9_network(n=48, delta=8, seed=1)
        result = run_gossip_reduction(graph, info, algorithm="push-pull", seed=1)
        assert result.reduction_holds
        assert result.target_size == 1
        assert result.cross_activations > 0

    def test_reduction_holds_on_theorem10_gadget(self):
        graph, info = theorem10_network(n=12, phi=0.2, ell=1, seed=2)
        result = run_gossip_reduction(graph, info, algorithm="push-pull", seed=2)
        assert result.reduction_holds
        assert result.game_rounds <= result.gossip_rounds

    def test_round_robin_algorithm_also_reduces(self):
        graph, info = symmetric_guessing_gadget(m=6, lo=1, hi=50, fast_edges={(2, 3)})
        result = run_gossip_reduction(graph, info, algorithm="round-robin", seed=0)
        assert result.reduction_holds

    def test_fast_edge_discovery_precedes_completion(self):
        graph, info = theorem9_network(n=32, delta=6, seed=3)
        result = run_gossip_reduction(graph, info, seed=3)
        assert result.fast_edge_discovery_round is not None
        assert result.fast_edge_discovery_round <= result.gossip_rounds

    def test_slow_latency_forces_many_rounds(self):
        # With a singleton hidden fast edge and very slow other cross edges,
        # local broadcast across the cut needs either the fast edge (hard to
        # find: ~m rounds of guessing) or a slow edge (hi latency).  Either
        # way the time is much larger than on an all-fast gadget.
        m = 10
        slow_graph, slow_info = symmetric_guessing_gadget(m, lo=1, hi=4 * m, fast_edges={(0, 0)})
        fast_graph, fast_info = symmetric_guessing_gadget(
            m, lo=1, hi=1, fast_edges={(i, j) for i in range(m) for j in range(m)}
        )
        slow = run_gossip_reduction(slow_graph, slow_info, seed=5)
        fast = run_gossip_reduction(fast_graph, fast_info, seed=5)
        assert slow.gossip_rounds > fast.gossip_rounds

    def test_empty_target_means_zero_game_rounds(self):
        graph, info = guessing_gadget(m=4, lo=1, hi=3, fast_edges=set())
        result = run_gossip_reduction(graph, info, seed=1)
        assert result.game_rounds == 0
        assert result.target_size == 0

    def test_unknown_algorithm_rejected(self):
        graph, info = guessing_gadget(m=3, lo=1, hi=4, fast_edges={(0, 0)})
        with pytest.raises(GraphError):
            run_gossip_reduction(graph, info, algorithm="teleport")

    def test_deterministic_given_seed(self):
        graph, info = theorem9_network(n=32, delta=6, seed=4)
        a = run_gossip_reduction(graph, info, seed=7)
        b = run_gossip_reduction(graph, info, seed=7)
        assert a.gossip_rounds == b.gossip_rounds
        assert a.game_rounds == b.game_rounds
