"""Unit tests for Pattern Broadcast and the T(k) schedule (repro.gossip.pattern_broadcast)."""

from __future__ import annotations

import math

import pytest

from repro.core import extract_parameters, upper_bound_pattern_broadcast
from repro.gossip import PatternBroadcast, Task, execute_pattern, pattern_schedule
from repro.graphs import (
    GraphError,
    all_pairs_weighted_distances,
    clique,
    path_graph,
    two_cluster_slow_bridge,
    weighted_diameter,
    weighted_erdos_renyi,
)
from repro.simulation import Rumor


class TestPatternSchedule:
    def test_base_case(self):
        assert pattern_schedule(1) == [1]

    def test_small_patterns(self):
        assert pattern_schedule(2) == [1, 2, 1]
        assert pattern_schedule(4) == [1, 2, 1, 4, 1, 2, 1]
        assert pattern_schedule(8) == [1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1]

    def test_length_formula(self):
        # |T(k)| = 2k - 1 invocations for k a power of two.
        for exponent in range(6):
            k = 2 ** exponent
            assert len(pattern_schedule(k)) == 2 * k - 1

    def test_largest_value_appears_once(self):
        schedule = pattern_schedule(16)
        assert schedule.count(16) == 1
        assert schedule[len(schedule) // 2] == 16

    def test_rejects_non_power_of_two(self):
        with pytest.raises(GraphError):
            pattern_schedule(6)

    def test_rejects_non_positive(self):
        with pytest.raises(GraphError):
            pattern_schedule(0)


class TestExecutePattern:
    def test_lemma26_exchange_within_distance_k(self):
        # After T(k), every pair of nodes at weighted distance <= k must have
        # exchanged rumors (Lemma 26).
        graph = weighted_erdos_renyi(12, 0.3, seed=5)
        k = 4
        knowledge = {node: {Rumor(origin=node)} for node in graph.nodes()}
        updated, _time, _count = execute_pattern(graph, k, knowledge)
        distances = all_pairs_weighted_distances(graph)
        for u in graph.nodes():
            origins = {r.origin for r in updated[u]}
            for v, distance in distances[u].items():
                if distance <= k:
                    assert v in origins, f"{u} missed {v} at distance {distance} <= {k}"

    def test_pattern_covers_full_diameter(self):
        graph = path_graph(6)
        k = 8  # >= diameter 5, rounded to a power of two
        knowledge = {node: {Rumor(origin=node)} for node in graph.nodes()}
        updated, _time, count = execute_pattern(graph, k, knowledge)
        everyone = set(graph.nodes())
        assert all({r.origin for r in updated[node]} >= everyone for node in graph.nodes())
        assert count == 2 * k - 1

    def test_charged_time_positive_and_additive(self):
        graph = clique(8)
        knowledge = {node: {Rumor(origin=node)} for node in graph.nodes()}
        _updated, time_small, _ = execute_pattern(graph, 1, knowledge)
        _updated, time_large, _ = execute_pattern(graph, 4, knowledge)
        assert 0 < time_small < time_large


class TestPatternBroadcast:
    def test_known_diameter_completes(self):
        graph = weighted_erdos_renyi(14, 0.3, seed=6)
        diameter = int(weighted_diameter(graph))
        result = PatternBroadcast(diameter=diameter).run(graph, seed=6)
        assert result.complete
        assert result.task is Task.ALL_TO_ALL
        assert result.details["pattern_k"] >= diameter

    def test_unknown_diameter_completes(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=8, bridges=1)
        result = PatternBroadcast().run(graph, seed=0)
        assert result.complete
        assert result.details["final_estimate"] >= 8

    def test_time_within_theoretical_shape(self):
        graph = weighted_erdos_renyi(16, 0.3, seed=7)
        diameter = int(weighted_diameter(graph))
        result = PatternBroadcast(diameter=diameter).run(graph, seed=7)
        params = extract_parameters(graph, seed=7)
        assert result.time <= 40 * upper_bound_pattern_broadcast(params)

    def test_deterministic(self):
        graph = weighted_erdos_renyi(12, 0.3, seed=8)
        diameter = int(weighted_diameter(graph))
        a = PatternBroadcast(diameter=diameter).run(graph, seed=1)
        b = PatternBroadcast(diameter=diameter).run(graph, seed=2)
        # The pattern algorithm is deterministic: the seed must not matter.
        assert a.time == b.time

    def test_disconnected_rejected(self):
        from repro.graphs import WeightedGraph

        graph = WeightedGraph(range(3))
        graph.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            PatternBroadcast().run(graph)
