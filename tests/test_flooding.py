"""Unit tests for the flooding baseline (repro.gossip.flooding)."""

from __future__ import annotations

import pytest

from repro.gossip import FloodingGossip, Task, run_flooding
from repro.graphs import GraphError, WeightedGraph, clique, path_graph, star


class TestFlooding:
    def test_completes_on_clique(self):
        result = run_flooding(clique(10), source=0, seed=0)
        assert result.complete
        assert result.time >= 1

    def test_completes_on_path_in_diameter_time(self):
        result = run_flooding(path_graph(10), source=0, seed=0)
        assert result.complete
        # Flooding on a unit path: the rumor advances at least one hop per
        # two rounds (round-robin over <=2 neighbours), so time is Θ(n).
        assert 9 <= result.time <= 30

    def test_all_to_all(self):
        result = FloodingGossip(task=Task.ALL_TO_ALL).run(clique(8), seed=1)
        assert result.complete

    def test_local_broadcast(self):
        # On a star, local broadcast is fast even under flooding: every leaf
        # contacts the hub in round 1 and the responses carry the hub's rumor,
        # so two rounds suffice (the Ω(Δ) lower bound needs the hidden-latency
        # gadget of Theorem 9, not a plain star).
        result = FloodingGossip(task=Task.LOCAL_BROADCAST).run(star(8), seed=1)
        assert result.complete
        assert result.time >= 2

    def test_informed_only_variant(self):
        result = FloodingGossip(informed_only=True).run(path_graph(6), source=0, seed=1)
        assert result.complete

    def test_invalid_source(self):
        with pytest.raises(GraphError):
            run_flooding(clique(4), source=77)

    def test_disconnected_rejected(self):
        graph = WeightedGraph(range(3))
        graph.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            run_flooding(graph, source=0)

    def test_deterministic(self):
        a = run_flooding(clique(9), source=0, seed=0)
        b = run_flooding(clique(9), source=0, seed=5)
        # Flooding is deterministic, so the seed must not matter.
        assert a.time == b.time

    def test_latency_respected(self):
        graph = WeightedGraph(range(2))
        graph.add_edge(0, 1, 7)
        result = run_flooding(graph, source=0)
        assert result.time >= 7
