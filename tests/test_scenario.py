"""Unit tests for the declarative scenario layer (repro.scenario)."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.gossip import PushPullGossip, Task
from repro.graphs import GraphError
from repro.scenario import (
    DynamicsSpec,
    FaultSpec,
    GraphSpec,
    ScenarioError,
    ScenarioSpec,
    build_fault_plan,
    build_graph,
    dump_scenario,
    library_scenario_names,
    load_named_scenario,
    load_scenario,
    prepare_scenario,
    run_scenario,
    scenario_library_dir,
)

LIBRARY = library_scenario_names()


def _small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="test-spec",
        algorithm="push-pull",
        task="all-to-all",
        graph=GraphSpec(family="erdos-renyi", n=20, latency="uniform"),
        seed=7,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = _small_spec(
            dynamics=(DynamicsSpec(kind="markov-churn", rate=0.05, horizon=64),),
            faults=FaultSpec(crash_fraction=0.2, crash_round=3),
        )
        text = spec.to_json()
        again = ScenarioSpec.from_json(text)
        assert again == spec
        assert again.to_json() == text

    def test_file_round_trip(self, tmp_path):
        spec = _small_spec(faults=FaultSpec(drop_fraction=0.1, drop_round=2))
        path = str(tmp_path / "spec.json")
        dump_scenario(spec, path)
        assert load_scenario(path) == spec

    def test_full_schema_always_serialized(self):
        payload = json.loads(_small_spec().to_json())
        assert set(payload) == {
            "name", "algorithm", "task", "graph", "seed", "engine",
            "source_index", "max_rounds", "reps", "forget_after",
            "dynamics", "faults", "schema",
        }
        assert set(payload["graph"]) == {"family", "n", "latency", "params"}


class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "surprise": 1})

    def test_unknown_graph_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown graph keys"):
            ScenarioSpec.from_dict({"name": "x", "graph": {"colour": "red"}})

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ScenarioError, match="algorithm"):
            _small_spec(algorithm="carrier-pigeon").validate()

    def test_bad_schema_rejected(self):
        with pytest.raises(ScenarioError, match="schema"):
            _small_spec(schema=99).validate()

    def test_task_compatibility_enforced(self):
        with pytest.raises(ScenarioError, match="only solves"):
            _small_spec(algorithm="spanner", task="one-to-all").validate()

    def test_static_algorithm_rejects_dynamics(self):
        spec = _small_spec(algorithm="spanner", dynamics=(DynamicsSpec(),))
        with pytest.raises(ScenarioError, match="does not support topology dynamics"):
            spec.validate()

    def test_static_algorithm_rejects_faults(self):
        spec = _small_spec(algorithm="pattern", faults=FaultSpec(crash_fraction=0.5))
        with pytest.raises(ScenarioError, match="fault"):
            spec.validate()

    def test_fault_fraction_range_checked(self):
        with pytest.raises(ScenarioError, match="crash_fraction"):
            _small_spec(faults=FaultSpec(crash_fraction=1.5)).validate()

    def test_slow_bridge_pins_latency_model(self):
        # slow-bridge latencies are fixed by construction; a spec claiming
        # another model would silently lie, so validation rejects it.
        with pytest.raises(ScenarioError, match="slow-bridge"):
            _small_spec(graph=GraphSpec(family="slow-bridge", n=16, latency="bimodal")).validate()
        _small_spec(graph=GraphSpec(family="slow-bridge", n=16, latency="unit")).validate()

    def test_source_index_out_of_range(self):
        spec = _small_spec(task="one-to-all", source_index=500)
        with pytest.raises(ScenarioError, match="out of range"):
            prepare_scenario(spec)


class TestFamilyParams:
    """graph.params validation names the failing *parameter*, not just the family."""

    def _ws_spec(self, **params):
        return _small_spec(
            graph=GraphSpec(family="watts-strogatz", n=24, latency="uniform", params=params)
        )

    def test_unknown_param_names_key_and_family(self):
        with pytest.raises(ScenarioError, match=r"graph\.params\.degree is unknown for family 'watts-strogatz'"):
            self._ws_spec(degree=4).validate()

    def test_params_only_for_parameterized_families(self):
        spec = _small_spec(
            graph=GraphSpec(family="erdos-renyi", n=24, latency="uniform", params={"k": 4})
        )
        with pytest.raises(ScenarioError, match=r"graph\.params\.k"):
            spec.validate()

    def test_ws_odd_k_names_parameter(self):
        with pytest.raises(ScenarioError, match=r"graph\.params\.k .* must be an even integer >= 2"):
            self._ws_spec(k=5).validate()

    def test_ws_rewire_out_of_range_names_parameter(self):
        with pytest.raises(ScenarioError, match=r"graph\.params\.rewire"):
            self._ws_spec(rewire=1.5).validate()

    def test_ws_k_must_stay_below_n(self):
        with pytest.raises(ScenarioError, match=r"graph\.params\.k"):
            self._ws_spec(k=24).validate()

    def test_configuration_model_gamma_names_parameter(self):
        spec = _small_spec(
            graph=GraphSpec(
                family="configuration-model", n=24, latency="uniform", params={"gamma": 1.0}
            )
        )
        with pytest.raises(ScenarioError, match=r"graph\.params\.gamma .* must be a number > 1"):
            spec.validate()

    def test_kronecker_initiator_mass_cross_check(self):
        spec = _small_spec(
            graph=GraphSpec(
                family="kronecker", n=32, latency="uniform",
                params={"a": 0.5, "b": 0.3, "c": 0.3},
            )
        )
        with pytest.raises(ScenarioError, match=r"graph\.params\.a"):
            spec.validate()

    def test_valid_params_pass_and_build(self):
        spec = self._ws_spec(k=4, rewire=0.3)
        spec.validate()
        graph = build_graph(spec)
        assert graph.num_nodes == 24

    def test_forget_after_requires_sir_algorithm(self):
        with pytest.raises(ScenarioError, match="forget_after"):
            _small_spec(forget_after=4).validate()

    def test_forget_after_must_be_positive_int(self):
        for bad in (0, True, "4"):
            spec = _small_spec(
                algorithm="sir-push-pull", task="one-to-all", forget_after=bad
            )
            with pytest.raises(ScenarioError, match="forget_after"):
                spec.validate()

    def test_sir_rejects_reference_engine(self):
        spec = _small_spec(
            algorithm="sir-push-pull", task="one-to-all", engine="reference", forget_after=4
        )
        with pytest.raises(ScenarioError, match="reference engine cannot run it"):
            spec.validate()


class TestPatching:
    def test_dotted_and_nested_patches(self):
        spec = _small_spec()
        patched = spec.patched({"graph.n": 30, "faults": {"crash_fraction": 0.3}, "engine": "fast"})
        assert patched.graph.n == 30
        assert patched.faults.crash_fraction == 0.3
        assert patched.faults.crash_round == 1  # defaults fill the rest
        assert patched.engine == "fast"
        # Patching never mutates the original.
        assert spec.graph.n == 20 and spec.faults is None

    def test_dynamics_list_patch_by_index(self):
        spec = _small_spec(dynamics=(DynamicsSpec(kind="markov-churn", rate=0.02),))
        patched = spec.patched({"dynamics.0.rate": 0.1})
        assert patched.dynamics[0].rate == 0.1

    def test_partial_dict_patch_on_list_element_merges(self):
        # A dict patch at a list element must merge like a dict patch on a
        # dict field — untouched knobs (here: the kind) keep their values.
        spec = _small_spec(dynamics=(DynamicsSpec(kind="latency-drift", amplitude=0.7),))
        patched = spec.patched({"dynamics.0": {"period": 64}})
        assert patched.dynamics[0].kind == "latency-drift"
        assert patched.dynamics[0].amplitude == 0.7
        assert patched.dynamics[0].period == 64

    def test_same_kind_dynamics_parts_draw_independent_streams(self):
        spec = _small_spec(
            dynamics=(
                DynamicsSpec(kind="markov-churn", rate=0.05, horizon=32),
                DynamicsSpec(kind="markov-churn", rate=0.05, horizon=32),
            )
        )
        from repro.scenario import build_dynamics

        composed = build_dynamics(spec, build_graph(spec))
        first, second = composed.parts
        events = {
            part: [part.events_for_round(r) for r in range(1, 32)] for part in (first, second)
        }
        # Identical knobs, different position -> different derived seed ->
        # the two schedules must not be byte-for-byte duplicates.
        assert events[first] != events[second]

    def test_patch_result_is_validated(self):
        with pytest.raises(ScenarioError):
            _small_spec().patched({"engine": "warp-drive"})

    def test_patch_bad_index_rejected(self):
        with pytest.raises(ScenarioError, match="out of range"):
            _small_spec().patched({"dynamics.3.rate": 0.5})


class TestExecution:
    def test_run_scenario_is_deterministic(self):
        spec = _small_spec(faults=FaultSpec(crash_fraction=0.2, crash_round=3))
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert a.time == b.time
        assert a.metrics.messages == b.metrics.messages
        assert a.metrics.suppressed_exchanges == b.metrics.suppressed_exchanges
        assert a.details["scenario"] == "test-spec"

    def test_backend_parity_for_faults_plus_churn(self):
        spec = _small_spec(
            dynamics=(DynamicsSpec(kind="markov-churn", rate=0.04, horizon=64),),
            faults=FaultSpec(crash_fraction=0.15, crash_round=4),
        )
        results = {
            engine: run_scenario(spec.patched({"engine": engine}))
            for engine in ("reference", "fast")
        }
        for field in ("rounds", "messages", "activations", "lost_exchanges", "suppressed_exchanges"):
            ref = getattr(results["reference"].metrics, field)
            fast = getattr(results["fast"].metrics, field)
            assert ref == fast, field

    def test_algorithm_run_accepts_scenario(self):
        spec = _small_spec()
        result = PushPullGossip(task=Task.ALL_TO_ALL).run(scenario=spec)
        assert result.complete
        assert result.details["scenario"] == "test-spec"

    def test_algorithm_run_scenario_engine_override(self):
        spec = _small_spec(engine="fast")
        result = PushPullGossip(task=Task.ALL_TO_ALL).run(scenario=spec, engine="reference")
        assert result.details["engine"] == "reference"

    def test_scenario_excludes_explicit_graph_and_source(self):
        spec = _small_spec()
        graph = build_graph(spec)
        with pytest.raises(GraphError, match="scenario"):
            PushPullGossip(task=Task.ALL_TO_ALL).run(graph, scenario=spec)
        with pytest.raises(GraphError, match="scenario"):
            PushPullGossip(task=Task.ALL_TO_ALL).run(scenario=spec, source=0)

    def test_scenario_honors_seed_override(self):
        spec = _small_spec(faults=FaultSpec(crash_fraction=0.25, crash_round=2))
        algo = PushPullGossip(task=Task.ALL_TO_ALL)
        baseline = algo.run(scenario=spec)
        same = algo.run(scenario=spec, seed=spec.seed)
        reseeded = [algo.run(scenario=spec, seed=k) for k in (101, 202)]
        assert same.metrics.messages == baseline.metrics.messages
        # Different seeds re-derive the graph, fault draw, and policy
        # streams together — the runs must actually differ.
        signatures = {
            (r.rounds_simulated, r.metrics.messages, r.metrics.suppressed_exchanges)
            for r in [baseline, *reseeded]
        }
        assert len(signatures) > 1

    def test_scenario_honors_max_rounds_override(self):
        spec = _small_spec()
        with pytest.raises(RuntimeError, match="did not reach"):
            PushPullGossip(task=Task.ALL_TO_ALL).run(scenario=spec, max_rounds=1)

    def test_seed_changes_fault_draw(self):
        spec = _small_spec(faults=FaultSpec(crash_fraction=0.3, crash_round=2))
        graph = build_graph(spec)
        plan_a = build_fault_plan(spec, graph, None)
        plan_b = build_fault_plan(spec.patched({"seed": 8}), graph, None)
        assert plan_a.node_crashes != plan_b.node_crashes

    def test_protect_source_keeps_source_alive(self):
        spec = _small_spec(
            algorithm="push-pull",
            task="one-to-all",
            faults=FaultSpec(crash_fraction=0.9, crash_round=1, protect_source=True),
        )
        prepared = prepare_scenario(spec)
        assert prepared.source not in prepared.fault_plan.node_crashes


class TestLibrary:
    def test_library_is_present_and_named_consistently(self):
        assert len(LIBRARY) >= 8
        for name in LIBRARY:
            spec = load_named_scenario(name)
            assert spec.name == name

    @pytest.mark.parametrize("name", LIBRARY)
    def test_library_file_is_canonical(self, name):
        """Committed files byte-match their canonical dump (load→dump→load)."""
        path = os.path.join(scenario_library_dir(), f"{name}.json")
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        spec = ScenarioSpec.from_json(text)
        assert spec.to_json() == text
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_library_name(self):
        with pytest.raises(ScenarioError, match="no library scenario"):
            load_named_scenario("does-not-exist")


class TestCLI:
    @pytest.mark.parametrize("name", LIBRARY)
    def test_every_library_scenario_runs_from_cli(self, name, capsys):
        path = os.path.join(scenario_library_dir(), f"{name}.json")
        exit_code = main(["run", "--scenario", path])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert f"scenario   : {name}" in captured
        assert "complete   : True" in captured

    def test_dump_scenario_replays_identically(self, tmp_path, capsys):
        out = str(tmp_path / "resolved.json")
        flat = ["run", "--algorithm", "push-pull", "--graph", "clique", "--nodes", "12",
                "--seed", "5", "--crash-fraction", "0.2", "--dump-scenario", out]
        assert main(flat) == 0
        first = capsys.readouterr().out
        assert main(["run", "--scenario", out]) == 0
        second = capsys.readouterr().out
        interesting = [
            line for line in first.splitlines()
            if line.startswith(("time", "messages", "activations", "suppressed"))
        ]
        assert interesting and all(line in second for line in interesting)

    def test_scenario_validate_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "algorithm": "carrier-pigeon"}')
        assert main(["scenario", "validate", str(bad)]) == 1

    def test_scenario_list_survives_a_broken_library_file(self, tmp_path, monkeypatch, capsys):
        good = load_named_scenario("crash-pushpull-er48")
        dump_scenario(good.patched({"name": "good-one"}), str(tmp_path / "good-one.json"))
        (tmp_path / "mismatched.json").write_text(good.to_json())  # stem != name
        monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
        assert main(["scenario", "list"]) == 1
        captured = capsys.readouterr()
        assert "good-one" in captured.out  # the valid entry still lists
        assert "INVALID" in captured.err  # the broken one is one line, not a traceback

    def test_scenario_dump_and_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        listing = capsys.readouterr().out
        assert "crash-pushpull-er48" in listing
        assert main(["scenario", "dump", "crash-pushpull-er48"]) == 0
        dumped = capsys.readouterr().out
        assert ScenarioSpec.from_json(dumped).name == "crash-pushpull-er48"

    def test_run_rejects_unknown_scenario_file(self):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", "/nonexistent/path.json"])

    def test_run_rejects_flat_flags_alongside_scenario(self):
        path = os.path.join(scenario_library_dir(), "crash-pushpull-er48.json")
        with pytest.raises(SystemExit, match="--crash-fraction"):
            main(["run", "--scenario", path, "--crash-fraction", "0.4"])
        with pytest.raises(SystemExit, match="--nodes"):
            main(["run", "--scenario", path, "--nodes", "96"])


class TestScenarioSweep:
    def test_patch_grid_sweep_runs_and_is_deterministic(self):
        from repro.analysis import deterministic_rows, scenario_sweep

        base = load_named_scenario("crash-pushpull-er48").patched({"graph.n": 20})
        patches = [{"faults.crash_fraction": 0.0}, {"faults.crash_fraction": 0.25}]
        experiment = scenario_sweep(
            "scenario-sweep-test", base, patches, repetitions=2, base_seed=3
        )
        table_a = experiment.run()
        table_b = experiment.run()
        rows = deterministic_rows(table_a)
        assert rows == deterministic_rows(table_b)
        assert [row["faults.crash_fraction"] for row in rows] == [0.0, 0.25]
        for row in rows:
            assert row["complete"] == 1.0
        # Crashing a quarter of the nodes suppresses deliveries.
        assert rows[1]["suppressed_exchanges"] > 0

    def test_sweep_accepts_library_name_as_base(self):
        from repro.analysis import scenario_sweep

        experiment = scenario_sweep(
            "scenario-sweep-name", "crash-pushpull-er48",
            [{"graph.n": 16, "faults.crash_fraction": 0.1}], repetitions=1,
        )
        table = experiment.run()
        assert list(table)[0]["complete"] == 1.0


class TestNumericPaths:
    def test_enumerates_present_numeric_leaves(self):
        spec = _small_spec(
            task="one-to-all",
            dynamics=(DynamicsSpec(kind="markov-churn", rate=0.05),),
            faults=FaultSpec(crash_fraction=0.2),
        ).validate()
        paths = spec.numeric_paths()
        assert paths == tuple(sorted(paths))
        for expected in (
            "seed",
            "max_rounds",
            "reps",
            "graph.n",
            "dynamics.0.rate",
            "dynamics.0.horizon",
            "faults.crash_fraction",
            "faults.drop_round",
        ):
            assert expected in paths
        # Non-numeric and schema-version leaves never appear.
        for excluded in ("schema", "name", "algorithm", "graph.family", "engine"):
            assert excluded not in paths

    def test_includes_creatable_leaves(self):
        # An absent faults block, omitted family params, and sir's unset
        # forget_after are all patch-creatable, so they must be offered.
        spec = _small_spec(
            task="one-to-all",
            algorithm="sir-push-pull",
            graph=GraphSpec(family="watts-strogatz", n=32, latency="unit"),
        ).validate()
        paths = spec.numeric_paths()
        for expected in (
            "faults.crash_fraction",
            "graph.params.k",
            "graph.params.rewire",
            "forget_after",
        ):
            assert expected in paths
        assert "faults.protect_source" not in paths  # bool, not numeric

    def test_every_enumerated_path_actually_patches(self):
        spec = _small_spec(
            task="one-to-all",
            algorithm="sir-push-pull",
            graph=GraphSpec(family="watts-strogatz", n=32, latency="unit"),
            dynamics=(DynamicsSpec(kind="markov-churn", rate=0.05),),
        ).validate()
        for path in spec.numeric_paths():
            current = spec.numeric_leaf(path)
            value = 4 if current is None else current
            patched = spec.patched({path: value})
            assert patched.numeric_leaf(path) == value

    def test_forget_after_only_offered_for_sir(self):
        plain = _small_spec(task="one-to-all").validate()
        assert "forget_after" not in plain.numeric_paths()
        with pytest.raises(ScenarioError, match="forget_after"):
            plain.require_numeric_path("forget_after")

    def test_require_numeric_path_error_names_path_and_choices(self):
        spec = _small_spec().validate()
        with pytest.raises(ScenarioError, match=r"'graph\.family'.*choose from"):
            spec.require_numeric_path("graph.family")
        with pytest.raises(ScenarioError, match="no.such.path"):
            spec.require_numeric_path("no.such.path")
        spec.require_numeric_path("graph.n")  # does not raise

    def test_numeric_leaf_resolves_defaults(self):
        spec = _small_spec(
            graph=GraphSpec(family="configuration-model", n=32, latency="unit"),
        ).validate()
        assert spec.numeric_leaf("graph.params.gamma") == 2.5
        assert spec.numeric_leaf("faults.crash_fraction") == 0.0
        assert spec.numeric_leaf("graph.n") == 32
