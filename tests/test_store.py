"""Tests for the content-addressed artifact store (repro.store).

The store's contract has four load-bearing faces, each covered here:

* **Digest stability** — graph/result digests depend on exactly the
  fields that determine the artifact, and are bit-identical across fresh
  interpreters with randomized ``PYTHONHASHSEED`` (they are file names in
  a shared on-disk cache, so any instability would orphan every entry).
* **Atomicity** — concurrent writers racing the same digest never
  produce a torn file: readers see a missing entry or a complete one.
* **Parity** — a cached checkout (memory or disk tier) and a cached
  ``run_scenario`` result are bit-for-bit what a fresh build/run
  produces, across the whole bundled scenario library on every engine.
* **Isolation** — mutating a checked-out graph (dynamics, churn) never
  dirties the store; the shared arrays themselves refuse writes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.gossip.base import DisseminationResult, Task
from repro.scenario import (
    GraphSpec,
    ScenarioSpec,
    build_graph,
    library_scenario_names,
    load_named_scenario,
    run_scenario,
)
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.protocol import EngineSelectionError
from repro.store import (
    GraphStore,
    ResultStore,
    configure_graph_store,
    configure_result_store,
    decode_result,
    encode_result,
    graph_digest,
    result_digest,
)

_SRC_DIR = os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))


@pytest.fixture(autouse=True)
def _pristine_process_stores():
    """Every test starts and ends with a clean process-wide store setup."""
    configure_result_store(None)
    store = configure_graph_store(enabled=True)
    store.clear()
    store.stats.reset()
    yield
    configure_result_store(None)
    store = configure_graph_store(enabled=True)
    store.clear()
    store.stats.reset()


def _spec(seed: int = 7, n: int = 64, **overrides) -> ScenarioSpec:
    fields = dict(
        name="store-test",
        algorithm="flooding",
        task="one-to-all",
        graph=GraphSpec(family="erdos-renyi", n=n, latency="unit"),
        seed=seed,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
class TestDigests:
    def test_graph_digest_covers_only_graph_fields(self):
        base = _spec()
        assert graph_digest(base) == graph_digest(base.patched({"algorithm": "push-pull"}))
        assert graph_digest(base) == graph_digest(base.patched({"engine": "edge"}))
        assert graph_digest(base) == graph_digest(base.patched({"reps": 9}))
        assert graph_digest(base) == graph_digest(
            base.patched({"faults.crash_fraction": 0.1})
        )

    def test_graph_digest_sees_every_graph_field(self):
        base = _spec()
        assert graph_digest(base) != graph_digest(base.patched({"graph.family": "clique"}))
        assert graph_digest(base) != graph_digest(base.patched({"graph.n": 65}))
        assert graph_digest(base) != graph_digest(base.patched({"graph.latency": "uniform"}))
        assert graph_digest(base) != graph_digest(base.patched({"seed": 8}))
        ws = _spec(graph=GraphSpec(family="watts-strogatz", n=64, latency="unit"))
        assert graph_digest(ws) != graph_digest(ws.patched({"graph.params.k": 6}))

    def test_pinned_seed_overrides_spec_seed(self):
        one, two = _spec(seed=1), _spec(seed=2)
        assert graph_digest(one) != graph_digest(two)
        assert graph_digest(one, graph_seed=77) == graph_digest(two, graph_seed=77)

    def test_result_digest_covers_the_full_spec(self):
        base = _spec()
        assert result_digest(base) == result_digest(_spec())
        assert result_digest(base) != result_digest(base.patched({"reps": 9}))
        assert result_digest(base) != result_digest(base.patched({"engine": "edge"}))
        assert result_digest(base) != result_digest(base, graph_seed=77)

    def test_digests_stable_under_randomized_hashseed(self):
        # Digests are file names in a shared cache: they must not move
        # between interpreter invocations with different hash seeds.
        script = (
            "from repro.scenario import ScenarioSpec, GraphSpec\n"
            "from repro.store import graph_digest, result_digest\n"
            "spec = ScenarioSpec(name='hashseed', algorithm='flooding',\n"
            "                    task='one-to-all', seed=7,\n"
            "                    graph=GraphSpec(family='watts-strogatz', n=96,\n"
            "                                    latency='bimodal',\n"
            "                                    params={'k': 4, 'p': 0.1}))\n"
            "print(graph_digest(spec), result_digest(spec))\n"
        )
        outputs = []
        for hashseed in ("1", "987654321"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=_SRC_DIR)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=120,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]


# ----------------------------------------------------------------------
# GraphStore tiers
# ----------------------------------------------------------------------
class TestGraphStore:
    def test_checkout_builds_once_and_matches_fresh(self):
        spec = _spec()
        configure_graph_store(enabled=False)
        fresh = build_graph(spec).indexed()
        store = GraphStore()
        builds = []

        def build():
            builds.append(1)
            configure_graph_store(enabled=False)
            return build_graph(spec)

        first = store.checkout(spec, build)
        second = store.checkout(spec, build)
        assert len(builds) == 1
        assert store.stats.misses == 1 and store.stats.hits == 1
        for graph in (first, second):
            snap = graph.indexed()
            assert snap.labels == fresh.labels
            assert np.array_equal(snap.indptr, fresh.indptr)
            assert np.array_equal(snap.indices, fresh.indices)
            assert np.array_equal(snap.latencies, fresh.latencies)

    def test_checkouts_are_isolated_from_each_other(self):
        spec = _spec()
        store = GraphStore()
        first = store.checkout(spec, lambda: _fresh_build(spec))
        u, v = first.nodes()[0], first.nodes()[1]
        before = first.num_edges
        if first.has_edge(u, v):
            first.remove_edge(u, v)
        else:
            first.add_edge(u, v, 3)
        assert first.num_edges != before
        second = store.checkout(spec, lambda: _fresh_build(spec))
        assert second.num_edges == before

    def test_stored_arrays_refuse_writes(self):
        spec = _spec()
        store = GraphStore()
        graph = store.checkout(spec, lambda: _fresh_build(spec))
        with pytest.raises(ValueError):
            graph.indexed().indices[0] = 0

    def test_memory_tier_is_an_lru(self):
        store = GraphStore(capacity=1)
        store.checkout(_spec(seed=1), lambda: _fresh_build(_spec(seed=1)))
        evicted = store.digest(_spec(seed=1))
        store.checkout(_spec(seed=2), lambda: _fresh_build(_spec(seed=2)))
        assert len(store) == 1
        assert evicted not in store
        assert store.digest(_spec(seed=2)) in store

    def test_disk_tier_round_trips(self, tmp_path):
        spec = _spec()
        writer = GraphStore(directory=str(tmp_path))
        original = writer.checkout(spec, lambda: _fresh_build(spec)).indexed()
        assert writer.stats.disk_writes == 1

        reader = GraphStore(directory=str(tmp_path))
        loaded = reader.checkout(spec, lambda: pytest.fail("disk hit must not build"))
        assert reader.stats.disk_hits == 1 and reader.stats.builds == 0
        snap = loaded.indexed()
        assert snap.labels == original.labels
        assert np.array_equal(snap.indptr, original.indptr)
        assert np.array_equal(snap.indices, original.indices)
        assert np.array_equal(snap.latencies, original.latencies)

    def test_torn_disk_file_is_a_miss_then_repaired(self, tmp_path):
        spec = _spec()
        store = GraphStore(directory=str(tmp_path))
        path = os.path.join(str(tmp_path), f"{store.digest(spec)}.npz")
        with open(path, "wb") as handle:
            handle.write(b"not an npz payload")
        graph = store.checkout(spec, lambda: _fresh_build(spec))
        assert store.stats.builds == 1
        assert graph.num_nodes == spec.graph.n
        # The rewrite repaired the entry: a fresh store now disk-hits it.
        repaired = GraphStore(directory=str(tmp_path))
        repaired.checkout(spec, lambda: pytest.fail("repaired entry must not build"))
        assert repaired.stats.disk_hits == 1

    def test_concurrent_writers_never_tear_an_entry(self, tmp_path):
        # Two interpreters race checkout() on the same digest, each
        # rebuilding and atomically rewriting the entry many times while
        # also reading it back.  Any torn write would surface as a load
        # failure (treated as a miss) or a corrupted final file.
        script = (
            "import sys\n"
            "from repro.scenario import ScenarioSpec, GraphSpec, build_graph\n"
            "from repro.store import GraphStore, configure_graph_store\n"
            "configure_graph_store(enabled=False)\n"
            "spec = ScenarioSpec(name='race', algorithm='flooding',\n"
            "                    task='one-to-all', seed=3,\n"
            "                    graph=GraphSpec(family='erdos-renyi', n=256,\n"
            "                                    latency='bimodal'))\n"
            "for _ in range(8):\n"
            "    store = GraphStore(directory=sys.argv[1])\n"
            "    graph = store.checkout(spec, lambda: build_graph(spec))\n"
            "    assert graph.num_nodes == 256\n"
        )
        env = dict(os.environ, PYTHONPATH=_SRC_DIR)
        racers = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for racer in racers:
            _stdout, stderr = racer.communicate(timeout=180)
            assert racer.returncode == 0, stderr.decode()
        assert not [name for name in os.listdir(tmp_path) if name.startswith(".tmp-")]
        # The surviving file is complete and identical to a fresh build.
        spec = ScenarioSpec(
            name="race",
            algorithm="flooding",
            task="one-to-all",
            seed=3,
            graph=GraphSpec(family="erdos-renyi", n=256, latency="bimodal"),
        )
        survivor = GraphStore(directory=str(tmp_path))
        loaded = survivor.checkout(spec, lambda: pytest.fail("final file must load"))
        assert survivor.stats.disk_hits == 1
        fresh = _fresh_build(spec).indexed()
        snap = loaded.indexed()
        assert snap.labels == fresh.labels
        assert np.array_equal(snap.indices, fresh.indices)
        assert np.array_equal(snap.latencies, fresh.latencies)


def _fresh_build(spec: ScenarioSpec):
    configure_graph_store(enabled=False)
    try:
        return build_graph(spec)
    finally:
        configure_graph_store(enabled=True)


# ----------------------------------------------------------------------
# Result codec + ResultStore
# ----------------------------------------------------------------------
def _toy_result(details: dict) -> DisseminationResult:
    return DisseminationResult(
        algorithm="flooding",
        task=Task.ONE_TO_ALL,
        time=4,
        rounds_simulated=4,
        complete=True,
        metrics=SimulationMetrics(rounds=4),
        details=details,
    )


class TestResultStore:
    def test_single_result_round_trips(self):
        configure_graph_store(enabled=False)
        result = run_scenario(_spec(n=48))
        payload = encode_result(result)
        assert payload is not None
        assert decode_result(json.loads(json.dumps(payload))) == result

    def test_replicated_result_round_trips(self):
        configure_graph_store(enabled=False)
        result = run_scenario(_spec(n=48, engine="batch"), reps=3)
        payload = encode_result(result)
        assert payload is not None
        assert decode_result(json.loads(json.dumps(payload))) == result

    def test_lossy_details_are_refused(self, tmp_path):
        store = ResultStore(str(tmp_path))
        lossy = _toy_result(details={"curve": (1, 2, 3)})  # tuple -> list round-trip
        assert encode_result(lossy) is None
        assert store.save(_spec(), lossy) is False
        assert store.stats.uncacheable == 1
        assert not os.listdir(tmp_path)

    def test_fetch_save_fetch(self, tmp_path):
        configure_graph_store(enabled=False)
        store = ResultStore(str(tmp_path))
        spec = _spec(n=48)
        assert store.fetch(spec) is None
        result = run_scenario(spec)
        assert store.save(spec, result) is True
        assert store.fetch(spec) == result
        assert store.fetch(spec.patched({"seed": 99})) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        spec = _spec()
        with open(store._path(store.digest(spec)), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.fetch(spec) is None

    def test_run_scenario_memoizes_through_the_active_store(self, tmp_path):
        spec = _spec(n=48)
        store = configure_result_store(str(tmp_path))
        first = run_scenario(spec)
        assert store.stats.disk_writes == 1
        second = run_scenario(spec)
        assert store.stats.hits == 1
        assert second == first


# ----------------------------------------------------------------------
# Library-wide bit-for-bit parity
# ----------------------------------------------------------------------
class TestLibraryParity:
    @pytest.mark.parametrize("engine", ["fast", "edge", "batch"])
    def test_cached_runs_match_fresh_runs(self, engine):
        # Every bundled scenario, on every engine that accepts it: the
        # fresh (store-off) run, the store-populating run, and the
        # memory-hit run must be bit-for-bit identical -- including the
        # dynamics scenarios, whose runs mutate their checked-out graph.
        names = library_scenario_names()
        assert names, "bundled scenario library is missing"
        compared = 0
        for name in names:
            spec = load_named_scenario(name).patched({"engine": engine})
            configure_graph_store(enabled=False)
            try:
                fresh = run_scenario(spec)
            except EngineSelectionError:
                continue
            finally:
                store = configure_graph_store(enabled=True)
            store.clear()
            populating = run_scenario(spec)
            memory_hit = run_scenario(spec)
            assert populating == fresh, f"{name}: populating run diverged on {engine}"
            assert memory_hit == fresh, f"{name}: cached run diverged on {engine}"
            compared += 1
        assert compared >= 3, f"engine {engine} accepted only {compared} library scenarios"


# ----------------------------------------------------------------------
# Library memoization (scenario.py satellites)
# ----------------------------------------------------------------------
class TestLibraryMemoization:
    def test_load_named_scenario_is_memoized_until_the_file_changes(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
        spec = _spec(name="memo")
        path = tmp_path / "memo.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        first = load_named_scenario("memo")
        assert load_named_scenario("memo") is first
        # Rewriting the file (new mtime) invalidates the entry.
        patched = spec.patched({"seed": 99})
        path.write_text(json.dumps(patched.to_dict()), encoding="utf-8")
        os.utime(path, ns=(1, 1))
        reloaded = load_named_scenario("memo")
        assert reloaded is not first
        assert reloaded.seed == 99

    def test_names_listing_tracks_the_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
        assert library_scenario_names() == []
        (tmp_path / "alpha.json").write_text(
            json.dumps(_spec(name="alpha").to_dict()), encoding="utf-8"
        )
        names = library_scenario_names()
        assert names == ["alpha"]
        names.append("mutated")
        assert library_scenario_names() == ["alpha"]

    def test_unknown_name_reports_the_library(self):
        from repro.scenario import ScenarioError

        with pytest.raises(ScenarioError, match="baseline-pushpull-er64"):
            load_named_scenario("no-such-scenario")
