"""Unit tests for Termination_Check and guess-and-double (repro.gossip.termination)."""

from __future__ import annotations

import pytest

from repro.gossip import execute_pattern, guess_and_double, termination_check
from repro.graphs import GraphError, WeightedGraph, clique, path_graph, two_cluster_slow_bridge
from repro.simulation import Rumor


def _pattern_primitive(graph):
    """A broadcast primitive backed by the T(k) pattern (rounded to powers of two)."""

    def broadcast(knowledge, k):
        power = 1
        while power < k:
            power *= 2
        return execute_pattern(graph, power, knowledge)[:2]

    return broadcast


def _seed_all(graph):
    return {node: {Rumor(origin=node)} for node in graph.nodes()}


class TestTerminationCheck:
    def test_no_failure_when_dissemination_complete(self):
        graph = clique(6)
        knowledge, _, _ = execute_pattern(graph, 1, _seed_all(graph))
        outcome = termination_check(graph, knowledge, _pattern_primitive(graph), k=1)
        assert outcome.terminate
        assert not outcome.failed_nodes
        assert not any(outcome.flags.values())

    def test_failure_when_estimate_too_small(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=8, bridges=1)
        # With k=1 the slow bridge is never crossed, so neighbours are missing.
        knowledge, _, _ = execute_pattern(graph, 1, _seed_all(graph))
        outcome = termination_check(graph, knowledge, _pattern_primitive(graph), k=1)
        assert not outcome.terminate
        assert outcome.failed_nodes
        # The bridge endpoints must have raised their flags.
        assert outcome.flags[0] or outcome.flags[3]

    def test_all_nodes_fail_together(self):
        # Lemma 24: termination (or not) is unanimous.
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=4, bridges=1)
        knowledge, _, _ = execute_pattern(graph, 1, _seed_all(graph))
        outcome = termination_check(graph, knowledge, _pattern_primitive(graph), k=1)
        if outcome.failed_nodes:
            # Every node that could be reached by the failure broadcast fails;
            # with the pattern primitive and a connected fast component both
            # cliques reach everyone internally, and the failure message itself
            # travels across the bridge during the check's second broadcast,
            # so in this small instance all nodes fail together.
            assert outcome.failed_nodes == set(graph.nodes())

    def test_invalid_estimate(self):
        graph = clique(4)
        with pytest.raises(GraphError):
            termination_check(graph, _seed_all(graph), _pattern_primitive(graph), k=0)

    def test_time_accumulates_two_broadcasts(self):
        graph = clique(5)
        knowledge, attempt_time, _ = execute_pattern(graph, 1, _seed_all(graph))
        outcome = termination_check(graph, knowledge, _pattern_primitive(graph), k=1)
        assert outcome.time > 0


class TestGuessAndDouble:
    def test_terminates_on_clique_with_first_estimate(self):
        graph = clique(6)
        knowledge, total_time, estimates = guess_and_double(graph, _seed_all(graph), _pattern_primitive(graph))
        assert estimates[0] == 1
        everyone = set(graph.nodes())
        assert all({r.origin for r in knowledge[node]} >= everyone for node in graph.nodes())

    def test_doubles_until_diameter_reached(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=8, bridges=1)
        knowledge, total_time, estimates = guess_and_double(graph, _seed_all(graph), _pattern_primitive(graph))
        assert estimates == [1, 2, 4, 8]
        everyone = set(graph.nodes())
        assert all({r.origin for r in knowledge[node]} >= everyone for node in graph.nodes())

    def test_never_terminates_early(self):
        # No node may terminate before exchanging rumors with everyone
        # (Lemma 24, first part): the returned knowledge is always complete.
        graph = path_graph(7)
        knowledge, _, _ = guess_and_double(graph, _seed_all(graph), _pattern_primitive(graph))
        everyone = set(graph.nodes())
        for node in graph.nodes():
            assert {r.origin for r in knowledge[node]} >= everyone

    def test_invalid_initial_estimate(self):
        graph = clique(4)
        with pytest.raises(GraphError):
            guess_and_double(graph, _seed_all(graph), _pattern_primitive(graph), initial_estimate=0)

    def test_max_estimate_guard(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=8, bridges=1)

        def broken_broadcast(knowledge, k):
            # A broadcast that never makes progress forces the guard to fire.
            return {node: set(rumors) for node, rumors in knowledge.items()}, 1.0

        with pytest.raises(RuntimeError):
            guess_and_double(graph, _seed_all(graph), broken_broadcast, max_estimate=4)
