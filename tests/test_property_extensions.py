"""Property-based tests (hypothesis) for the extension subsystems.

Covers graph serialization round-trips, gossip aggregation correctness,
crash-fault safety, and bottleneck upgrade monotonicity — each an invariant
that should hold for arbitrary (small) weighted graphs, not just the
hand-picked fixtures.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import find_bottleneck, suggest_upgrades
from repro.gossip import gossip_aggregate
from repro.graphs import (
    WeightedGraph,
    assign_latencies,
    erdos_renyi,
    from_edge_list,
    from_json,
    to_edge_list,
    to_json,
    uniform_latency,
)
from repro.simulation import FaultPlan, FaultyEngine, random_crash_plan
from repro.simulation.rng import make_rng

# FaultyEngine's deprecation warning is expected here; the shim's semantics
# are exactly what these properties pin down.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

graph_params = st.tuples(
    st.integers(min_value=3, max_value=12),      # n
    st.floats(min_value=0.3, max_value=0.9),     # edge probability
    st.integers(min_value=1, max_value=64),      # max latency
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build_graph(params) -> WeightedGraph:
    n, p, max_latency, seed = params
    base = erdos_renyi(n, p, seed=seed)
    return assign_latencies(base, uniform_latency(1, max_latency), seed=seed)


class TestSerializationProperties:
    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_edge_list_round_trip(self, params):
        graph = build_graph(params)
        assert from_edge_list(to_edge_list(graph)) == graph

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip(self, params):
        graph = build_graph(params)
        assert from_json(to_json(graph)) == graph

    @given(graph_params)
    @settings(max_examples=25, deadline=None)
    def test_formats_agree(self, params):
        graph = build_graph(params)
        assert from_edge_list(to_edge_list(graph)) == from_json(to_json(graph))


class TestAggregationProperties:
    @given(graph_params, st.sampled_from(["min", "max", "sum", "mean"]))
    @settings(max_examples=25, deadline=None)
    def test_aggregate_is_exact_on_every_connected_graph(self, params, aggregate):
        graph = build_graph(params)
        inputs = {node: float((node * 7) % 13) for node in graph.nodes()}
        result = gossip_aggregate(graph, inputs, aggregate=aggregate, seed=params[3])
        assert result.exact
        # All nodes agree, and the consensus matches a direct computation.
        direct = {
            "min": min(inputs.values()),
            "max": max(inputs.values()),
            "sum": sum(inputs.values()),
            "mean": sum(inputs.values()) / len(inputs),
        }[aggregate]
        assert math.isclose(result.consensus_value(), direct)

    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_aggregation_time_at_least_eccentricity(self, params):
        from repro.graphs import dijkstra

        graph = build_graph(params)
        inputs = {node: 1.0 for node in graph.nodes()}
        result = gossip_aggregate(graph, inputs, aggregate="count", seed=params[3])
        eccentricities = [max(dijkstra(graph, node).values()) for node in graph.nodes()]
        # All-to-all needs at least the largest eccentricity (the last pair to meet).
        assert result.time >= max(eccentricities)


class TestFaultProperties:
    @given(
        st.integers(min_value=4, max_value=12),
        st.floats(min_value=0.0, max_value=0.4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_survivors_always_complete_on_a_clique(self, n, crash_fraction, seed):
        from repro.graphs import clique

        graph = clique(n)
        plan = random_crash_plan(graph, crash_fraction, crash_round=2, seed=seed)
        engine = FaultyEngine(graph, plan)
        engine.seed_all_rumors()
        rng = make_rng(seed, "fault-property")
        metrics = engine.run(
            lambda view: rng.choice(view.neighbors),
            stop_condition=lambda eng: eng.all_to_all_complete(),
            max_rounds=10_000,
        )
        survivors = plan.surviving_nodes(graph, engine.round)
        assert len(survivors) >= n - int(round(crash_fraction * n)) - 1
        for node in survivors:
            assert engine.knowledge[node].origins() >= survivors
        assert metrics.completion_time is not None

    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_empty_fault_plan_changes_nothing(self, params):
        graph = build_graph(params)
        plan = FaultPlan()
        assert plan.surviving_nodes(graph, 100) == set(graph.nodes())
        for edge in graph.edges():
            assert not plan.is_edge_dropped(edge.u, edge.v, 100)


class TestBottleneckProperties:
    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_bottleneck_report_is_consistent(self, params):
        graph = build_graph(params)
        report = find_bottleneck(graph)
        assert 0.0 <= report.phi_star <= 1.0 + 1e-9
        assert report.ell_star in graph.distinct_latencies()
        # The cut edges are partitioned by the critical latency threshold.
        for edge in report.fast_cut_edges:
            assert edge.latency <= report.ell_star
        for edge in report.slow_cut_edges:
            assert edge.latency > report.ell_star

    @given(graph_params)
    @settings(max_examples=12, deadline=None)
    def test_upgrades_never_worsen_the_critical_ratio(self, params):
        graph = build_graph(params)
        before = find_bottleneck(graph).critical_ratio
        suggestions = suggest_upgrades(graph, budget=1, upgraded_latency=1)
        for _edge, new_ratio in suggestions:
            assert new_ratio <= before + 1e-9
