"""Unit tests for repro.graphs.validation."""

from __future__ import annotations

import pytest

from repro.graphs import (
    GraphError,
    WeightedGraph,
    clique,
    describe_graph,
    path_graph,
    validate_graph,
)


class TestDescribeGraph:
    def test_report_fields(self, triangle):
        report = describe_graph(triangle)
        assert report.num_nodes == 3
        assert report.num_edges == 3
        assert report.max_degree == 2
        assert report.min_degree == 2
        assert report.is_connected
        assert report.max_latency == 4
        assert report.min_latency == 1
        assert report.weighted_diameter == 3  # 0-1-2 path of cost 3 beats the cost-4 edge
        assert report.hop_diameter == 1

    def test_as_dict_keys(self, small_clique):
        report = describe_graph(small_clique)
        data = report.as_dict()
        assert data["n"] == 6
        assert data["connected"] == 1

    def test_inexact_diameter(self):
        graph = path_graph(20)
        report = describe_graph(graph, exact_diameter=False, diameter_sample=4)
        assert report.weighted_diameter <= 19


class TestValidateGraph:
    def test_valid_graph_passes(self, small_clique):
        validate_graph(small_clique, expected_regular_degree=5)

    def test_disconnected_graph_rejected(self):
        graph = WeightedGraph(range(4))
        graph.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_min_nodes_enforced(self):
        with pytest.raises(GraphError):
            validate_graph(clique(3), min_nodes=5)

    def test_max_latency_enforced(self, triangle):
        with pytest.raises(GraphError):
            validate_graph(triangle, max_latency=2)

    def test_regularity_enforced(self, small_star):
        with pytest.raises(GraphError):
            validate_graph(small_star, expected_regular_degree=3)
