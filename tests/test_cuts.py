"""Unit tests for repro.graphs.cuts."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Cut,
    GraphError,
    WeightedGraph,
    clique,
    cut_edges,
    cut_edges_within_latency,
    enumerate_cuts,
    path_graph,
    sweep_cuts,
)


class TestCut:
    def test_requires_non_empty_side(self):
        with pytest.raises(GraphError):
            Cut(frozenset())

    def test_of_builds_frozenset(self):
        cut = Cut.of([1, 2, 2])
        assert cut.side == frozenset({1, 2})

    def test_other_side(self, small_clique):
        cut = Cut.of([0, 1])
        assert cut.other_side(small_clique) == frozenset({2, 3, 4, 5})

    def test_is_proper(self, small_clique):
        assert Cut.of([0]).is_proper(small_clique)
        assert not Cut.of(small_clique.nodes()).is_proper(small_clique)

    def test_min_volume_clique(self, small_clique):
        # K6: each node has degree 5; side of 2 nodes has volume 10 < 20.
        assert Cut.of([0, 1]).min_volume(small_clique) == 10

    def test_min_volume_picks_smaller_side(self):
        graph = path_graph(4)
        cut = Cut.of([0])
        assert cut.min_volume(graph) == 1


class TestCutEdges:
    def test_cut_edges_on_path(self):
        graph = path_graph(4)
        crossing = cut_edges(graph, Cut.of([0, 1]))
        assert len(crossing) == 1
        assert {crossing[0].u, crossing[0].v} == {1, 2}

    def test_cut_edges_latency_filter(self, triangle):
        cut = Cut.of([0])
        all_edges = cut_edges(triangle, cut)
        fast_edges = cut_edges_within_latency(triangle, cut, 1)
        assert len(all_edges) == 2
        assert len(fast_edges) == 1
        assert fast_edges[0].latency == 1

    def test_cut_edges_clique(self, small_clique):
        crossing = cut_edges(small_clique, Cut.of([0, 1, 2]))
        assert len(crossing) == 9


class TestEnumeration:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_number_of_proper_cuts(self, n):
        graph = clique(n)
        cuts = list(enumerate_cuts(graph))
        assert len(cuts) == 2 ** (n - 1) - 1

    def test_cuts_are_distinct_partitions(self):
        graph = clique(4)
        partitions = set()
        for cut in enumerate_cuts(graph):
            other = frozenset(graph.nodes()) - cut.side
            partitions.add(frozenset({cut.side, other}))
        assert len(partitions) == 2 ** 3 - 1

    def test_no_cuts_for_single_node(self):
        assert list(enumerate_cuts(WeightedGraph([0]))) == []

    def test_sweep_cuts(self):
        cuts = list(sweep_cuts([3, 1, 2]))
        assert [sorted(c.side) for c in cuts] == [[3], [1, 3]]
