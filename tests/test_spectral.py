"""Tests for the sparse spectral machinery (repro.core.spectral).

Covers the contracts the estimators rely on:

* sparse-vs-exact agreement on every small gadget graph (the swept φ
  upper-bounds exhaustive enumeration and the Cheeger sandwich holds),
* sparse-vs-dense Fiedler sweep agreement at n≈512 (documented 1e-6
  relative tolerance on the swept conductance; eigenvalues to 1e-6),
* a hypothesis property pinning ``λ2/2 ≤ φ ≤ φ̂ ≤ √(2·λ2)`` on random ER
  graphs,
* bit-for-bit determinism of the estimate across two fresh processes
  running under different ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DENSE_EIGH_MAX_NODES,
    LaplacianOperator,
    cheeger_bounds,
    fiedler_pair,
    fiedler_pair_dense,
    ordering_from_embedding,
    spectral_conductance,
    sweep_cut_conductance,
    weight_ell_conductance,
)
from repro.core.estimation import fiedler_ordering
from repro.graphs import (
    GraphError,
    WeightedGraph,
    clique,
    cycle_graph,
    dumbbell,
    erdos_renyi_csr,
    grid_graph,
    path_graph,
    star,
    two_cluster_slow_bridge,
    weighted_erdos_renyi,
)

_SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _graph_with_slow_tail():
    """A fast connected core whose last-indexed nodes have only slow edges.

    Thresholding at latency 1 isolates the two highest node indices — the
    exact shape that used to corrupt the clamped-reduceat matvec.
    """
    graph = WeightedGraph(range(8))
    fast_edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3), (1, 4)]
    for u, v in fast_edges:
        graph.add_edge(u, v, latency=1)
    graph.add_edge(5, 6, latency=16)
    graph.add_edge(6, 7, latency=16)
    graph.add_edge(7, 2, latency=16)
    return graph


def _gadget_graphs():
    """Every small (n ≤ 18) gadget family the exact oracle can enumerate."""
    return [
        ("triangle", clique(3)),
        ("clique-6", clique(6)),
        ("path-8", path_graph(8)),
        ("star-9", star(9)),
        ("cycle-12", cycle_graph(12)),
        ("grid-4x4", grid_graph(4, 4)),
        ("dumbbell-10", dumbbell(5, bridge_latency=16)),
        ("slow-bridge-10", two_cluster_slow_bridge(5, fast_latency=1, slow_latency=16)),
        ("er-14", weighted_erdos_renyi(14, 0.4, seed=3)),
        ("er-16-sparse", weighted_erdos_renyi(16, 0.3, seed=7)),
    ]


class TestGadgetAgreement:
    @pytest.mark.parametrize("name,graph", _gadget_graphs(), ids=[n for n, _ in _gadget_graphs()])
    def test_sweep_upper_bounds_exact_inside_cheeger(self, name, graph):
        ell = graph.max_latency()
        exact = weight_ell_conductance(graph, ell).value
        estimate = spectral_conductance(graph, ell=ell, seed=0)
        lower, upper = estimate.cheeger_interval()
        # The sweep explores an explicit family of cuts, so it can only
        # overshoot the exhaustive minimum; Cheeger sandwiches both.
        assert exact <= estimate.phi + 1e-9, f"{name}: sweep beat exhaustive enumeration"
        assert lower - 1e-9 <= exact <= upper + 1e-9, f"{name}: Cheeger sandwich violated"
        assert estimate.phi <= upper + 1e-9, f"{name}: sweep cut escaped sqrt(2*lambda2)"

    @pytest.mark.parametrize("name,graph", _gadget_graphs(), ids=[n for n, _ in _gadget_graphs()])
    def test_sparse_solver_matches_dense_eigenvalue(self, name, graph):
        operator = LaplacianOperator.from_indexed(graph.indexed())
        dense = fiedler_pair_dense(operator)
        sparse = fiedler_pair(operator, 5, "test", tol=1e-10, max_iters=2000)
        assert sparse.converged, f"{name}: sparse solver failed to converge"
        assert sparse.lambda2 == pytest.approx(dense.lambda2, rel=1e-6, abs=1e-8), name

    def test_sweep_matches_bruteforce_prefix_values(self):
        # The vectorized all-prefix pass must equal per-cut enumeration of
        # the same prefixes, cut by cut.
        graph = weighted_erdos_renyi(12, 0.45, seed=11)
        snapshot = graph.indexed()
        ell = graph.max_latency()
        order = np.arange(snapshot.num_nodes, dtype=np.int64)
        result = sweep_cut_conductance(
            snapshot.indptr,
            snapshot.indices,
            order,
            volume_degrees=snapshot.degrees(),
            slot_weights=(snapshot.latencies <= ell).astype(np.float64),
        )
        from repro.graphs.cuts import Cut
        from repro.core.conductance import cut_weight_ell_conductance

        labels = snapshot.labels
        for k in range(1, snapshot.num_nodes):
            side = frozenset(labels[int(i)] for i in order[:k])
            expected = cut_weight_ell_conductance(graph, Cut(side), ell)
            assert result.values[k - 1] == pytest.approx(expected, abs=1e-12), f"prefix {k}"


class TestDenseSparseParity:
    def test_sweep_agreement_at_512(self):
        graph = erdos_renyi_csr(512, 16 / 512, seed=5)
        snapshot = graph.indexed()
        operator = LaplacianOperator.from_indexed(snapshot)
        dense = fiedler_pair_dense(operator)
        sparse = fiedler_pair(operator, 9, "parity", tol=1e-8, max_iters=1000)
        assert sparse.converged
        assert sparse.lambda2 == pytest.approx(dense.lambda2, rel=1e-6, abs=1e-8)
        degrees = snapshot.degrees()
        sweeps = []
        for pair in (dense, sparse):
            order = ordering_from_embedding(pair.embedding, degrees > 0)
            sweeps.append(
                sweep_cut_conductance(
                    snapshot.indptr, snapshot.indices, order, volume_degrees=degrees
                ).value
            )
        # Documented tolerance: the swept conductance (not the ordering —
        # near-degenerate eigenspaces permit different permutations) must
        # agree to 1e-6 relative.
        assert sweeps[1] == pytest.approx(sweeps[0], rel=1e-6)

    def test_fiedler_ordering_delegates_to_sparse(self):
        # Above DENSE_EIGH_MAX_NODES the ordering comes from the LOBPCG
        # path; it must still be a permutation whose sweep stays inside
        # the Cheeger interval.
        n = DENSE_EIGH_MAX_NODES + 64
        graph = erdos_renyi_csr(n, 12 / n, seed=4)
        ordering = fiedler_ordering(graph)
        assert sorted(ordering) == sorted(graph.nodes())
        estimate = spectral_conductance(graph, seed=0)
        assert estimate.method == "lobpcg"
        assert estimate.phi <= estimate.cheeger_interval()[1] + 1e-9

    def test_fiedler_ordering_dense_matches_sparse_sweep(self):
        # The same graph ordered by both solvers: swept conductance within
        # the documented 1e-6 relative tolerance.
        n = 256
        graph = erdos_renyi_csr(n, 12 / n, seed=8)
        snapshot = graph.indexed()
        degrees = snapshot.degrees()
        dense_order = fiedler_ordering(graph)
        sparse_order = fiedler_ordering(graph, max_dense_nodes=0)
        index = snapshot.index
        values = []
        for ordering in (dense_order, sparse_order):
            positions = np.fromiter((index[node] for node in ordering), dtype=np.int64, count=n)
            values.append(
                sweep_cut_conductance(
                    snapshot.indptr, snapshot.indices, positions, volume_degrees=degrees
                ).value
            )
        assert values[1] == pytest.approx(values[0], rel=1e-6)


class TestCheegerProperty:
    @given(
        st.tuples(
            st.integers(min_value=6, max_value=12),
            st.floats(min_value=0.35, max_value=0.9),
            st.integers(min_value=0, max_value=10_000),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_cheeger_sandwich_on_random_er(self, params):
        n, p, seed = params
        graph = weighted_erdos_renyi(n, p, seed=seed)
        ell = graph.max_latency()
        estimate = spectral_conductance(graph, ell=ell, seed=seed)
        exact = weight_ell_conductance(graph, ell).value
        lower, upper = estimate.cheeger_interval()
        assert lower - 1e-9 <= exact <= estimate.phi + 1e-9
        assert estimate.phi <= upper + 1e-9

    def test_cheeger_bounds_shape(self):
        lower, upper = cheeger_bounds(0.5)
        assert lower == pytest.approx(0.25)
        assert upper == pytest.approx(1.0)
        assert cheeger_bounds(-1e-15) == (0.0, 0.0)


class TestOperator:
    def test_matvec_matches_dense(self):
        graph = weighted_erdos_renyi(30, 0.2, seed=2)
        operator = LaplacianOperator.from_indexed(graph.indexed())
        dense = operator.dense_laplacian()
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(operator.n)
            assert np.allclose(operator.matvec(x), dense @ x, atol=1e-12)

    def test_matvec_matches_dense_with_trailing_isolated_node(self):
        # Regression: reduceat starts used to be clamped to len(vals)-1,
        # which silently dropped the last supported node's final edge value
        # whenever zero-degree nodes held the highest indices — a triangle
        # plus trailing isolated node gave matvec 2.5 where dense said 1.5.
        indptr = np.array([0, 2, 4, 6, 6], dtype=np.int64)
        indices = np.array([1, 2, 0, 2, 0, 1], dtype=np.int64)
        operator = LaplacianOperator(indptr, indices)
        dense = operator.dense_laplacian()
        assert np.allclose(operator.matvec(np.ones(4)), dense @ np.ones(4), atol=1e-12)
        rng = np.random.default_rng(1)
        for _ in range(5):
            x = rng.standard_normal(operator.n)
            assert np.allclose(operator.matvec(x), dense @ x, atol=1e-12)

    def test_matvec_symmetric_with_trailing_isolated_nodes(self):
        # The implicit Laplacian must stay symmetric (x'Ly == y'Lx) even
        # when latency filtering isolates the highest-indexed nodes.
        graph = _graph_with_slow_tail()
        operator = LaplacianOperator.from_indexed(graph.indexed(), max_latency=1)
        assert bool(np.any(operator._zero_degree[-2:]))
        rng = np.random.default_rng(2)
        x = rng.standard_normal(operator.n)
        y = rng.standard_normal(operator.n)
        assert float(x @ operator.matvec(y)) == pytest.approx(
            float(y @ operator.matvec(x)), abs=1e-12
        )

    def test_sparse_matches_dense_on_latency_filtered_graph(self):
        # Regression: on a filtered graph whose slow-only nodes sit at the
        # top indices, the sparse solver used to return a wrong lambda2
        # (0.3231 vs dense 0.3178) with converged=False.
        graph = _graph_with_slow_tail()
        snapshot = graph.indexed()
        operator = LaplacianOperator.from_indexed(snapshot, max_latency=1)
        dense = operator.dense_laplacian()
        rng = np.random.default_rng(3)
        for _ in range(5):
            x = rng.standard_normal(operator.n)
            assert np.allclose(operator.matvec(x), dense @ x, atol=1e-12)
        dense_pair = fiedler_pair_dense(operator)
        sparse_pair = fiedler_pair(operator, 7, "filtered", tol=1e-10, max_iters=2000)
        assert sparse_pair.converged
        assert sparse_pair.lambda2 == pytest.approx(dense_pair.lambda2, rel=1e-6, abs=1e-8)

    def test_kernel_vector_is_null_direction(self):
        graph = weighted_erdos_renyi(25, 0.25, seed=6)
        operator = LaplacianOperator.from_indexed(graph.indexed())
        kernel = operator.kernel_vector()
        assert np.linalg.norm(operator.matvec(kernel)) < 1e-10

    def test_latency_threshold_drops_slow_edges(self):
        graph = two_cluster_slow_bridge(5, fast_latency=1, slow_latency=16)
        snapshot = graph.indexed()
        full = LaplacianOperator.from_indexed(snapshot)
        fast_only = LaplacianOperator.from_indexed(snapshot, max_latency=1)
        assert len(fast_only.indices) < len(full.indices)
        # Dropping the bridge disconnects the support: lambda2 becomes 0.
        pair = fiedler_pair_dense(fast_only)
        assert pair.lambda2 == pytest.approx(0.0, abs=1e-9)

    def test_rejects_edgeless_graphs(self):
        indptr = np.zeros(5, dtype=np.int64)
        with pytest.raises(GraphError):
            LaplacianOperator(indptr, np.array([], dtype=np.int64))


class TestDeterminism:
    def test_identical_across_processes_with_random_hashseed(self):
        # Same seed => bit-identical estimate, even with different (and
        # randomized) PYTHONHASHSEED values in fresh interpreters.
        script = (
            "from repro.core import spectral_conductance\n"
            "from repro.graphs import erdos_renyi_csr\n"
            "graph = erdos_renyi_csr(700, 10 / 700, seed=3)\n"
            "estimate = spectral_conductance(graph, seed=41)\n"
            "print(repr((estimate.phi, estimate.lambda2, estimate.prefix, "
            "estimate.iterations, estimate.method)))\n"
        )
        outputs = []
        for hashseed in ("1", "987654321"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=_SRC_DIR)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=120,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert "lobpcg" in outputs[0]

    def test_seed_changes_start_vector_not_contract(self):
        graph = erdos_renyi_csr(700, 10 / 700, seed=3)
        a = spectral_conductance(graph, seed=1)
        b = spectral_conductance(graph, seed=2)
        # Different seeds may take different iteration counts but must land
        # on the same eigenvalue (it is a property of the graph).
        assert a.lambda2 == pytest.approx(b.lambda2, rel=1e-4, abs=1e-6)
