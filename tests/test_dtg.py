"""Unit tests for DTG / ℓ-DTG local broadcast (repro.gossip.dtg)."""

from __future__ import annotations

import math

import pytest

from repro.gossip import dtg_local_broadcast, ell_dtg
from repro.graphs import (
    GraphError,
    WeightedGraph,
    clique,
    cycle_graph,
    grid_graph,
    path_graph,
    star,
    two_cluster_slow_bridge,
    weighted_erdos_renyi,
)
from repro.simulation import Rumor


def _local_broadcast_achieved(graph, knowledge) -> bool:
    """Every node knows a rumor originating at each of its neighbours."""
    for node in graph.nodes():
        origins = {rumor.origin for rumor in knowledge[node]}
        if any(neighbor not in origins for neighbor in graph.neighbors(node)):
            return False
    return True


class TestDTG:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: clique(12),
            lambda: path_graph(10),
            lambda: star(12),
            lambda: cycle_graph(9),
            lambda: grid_graph(4, 4),
            lambda: weighted_erdos_renyi(24, 0.2, seed=3),
        ],
    )
    def test_solves_local_broadcast(self, graph_builder):
        graph = graph_builder()
        result = dtg_local_broadcast(graph)
        assert _local_broadcast_achieved(graph, result.knowledge)

    def test_round_complexity_is_polylog_on_clique(self):
        graph = clique(32)
        result = dtg_local_broadcast(graph)
        # O(log^2 n) rounds; generous constant.
        assert result.rounds <= 20 * math.log2(32) ** 2
        assert result.iterations <= 3 * math.log2(32)

    def test_iterations_bounded_by_degree(self):
        graph = star(20)
        result = dtg_local_broadcast(graph)
        assert result.iterations <= graph.max_degree()

    def test_tokens_removed_from_output(self):
        graph = clique(6)
        result = dtg_local_broadcast(graph)
        for rumors in result.knowledge.values():
            for rumor in rumors:
                assert not (isinstance(rumor.payload, tuple) and rumor.payload and rumor.payload[0] == "__dtg_token__")

    def test_preserves_initial_knowledge(self):
        graph = path_graph(5)
        initial = {node: {Rumor(origin=node, payload=f"data-{node}")} for node in graph.nodes()}
        result = dtg_local_broadcast(graph, knowledge=initial)
        # Node 2 must now hold the payload rumors of its neighbours 1 and 3.
        payloads = {rumor.payload for rumor in result.knowledge[2]}
        assert {"data-1", "data-2", "data-3"} <= payloads

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            dtg_local_broadcast(WeightedGraph())

    def test_single_node_graph_trivial(self):
        result = dtg_local_broadcast(WeightedGraph([0]))
        assert result.rounds == 0
        assert result.iterations == 0

    def test_exchanged_pairs_cover_all_edges(self):
        graph = cycle_graph(7)
        result = dtg_local_broadcast(graph)
        assert result.exchanged_pairs == {frozenset((e.u, e.v)) for e in graph.edges()}


class TestEllDTG:
    def test_charged_time_scales_with_ell(self):
        graph = weighted_erdos_renyi(16, 0.3, seed=1)
        r1 = ell_dtg(graph, 1)
        r4 = ell_dtg(graph, graph.max_latency())
        assert r1.charged_time == r1.rounds
        assert r4.charged_time == graph.max_latency() * r4.rounds

    def test_only_fast_neighbours_guaranteed(self):
        graph = two_cluster_slow_bridge(4, fast_latency=1, slow_latency=50, bridges=1)
        result = ell_dtg(graph, 1)
        # Within each clique local broadcast holds; across the slow bridge it need not.
        origins_0 = {rumor.origin for rumor in result.knowledge[0]}
        assert {1, 2, 3} <= origins_0
        # The latency-50 bridge neighbour (node 4) is not guaranteed.
        knowledge_bridge = {rumor.origin for rumor in result.knowledge[4]}
        assert {5, 6, 7} <= knowledge_bridge

    def test_full_threshold_matches_local_broadcast(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=9, bridges=1)
        result = ell_dtg(graph, 9)
        assert _local_broadcast_achieved(graph, result.knowledge)

    def test_invalid_ell(self):
        with pytest.raises(GraphError):
            ell_dtg(clique(4), 0)

    def test_isolated_nodes_in_threshold_subgraph(self):
        graph = WeightedGraph(range(3))
        graph.add_edge(0, 1, 1)
        graph.add_edge(1, 2, 10)
        result = ell_dtg(graph, 1)
        # Node 2 is isolated in G_1 but still appears in the output.
        assert 2 in result.knowledge
