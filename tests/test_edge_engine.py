"""Edge-vectorized engine: parity, dispatch, memory guard, golden replay.

The load-bearing contract: a single run on ``engine="edge"`` is
**bit-for-bit equal** to the sequential numpy-mode fast-engine run whose
neighbour draws are seeded ``derive_seed(seed, "rep", 0)`` — i.e.
replication 0 of the batched form.  These tests assert it over the whole
bundled scenario library (dynamics, faults, and flooding included), pin
the suppressed/lost metric columns on the crash and churn scenarios,
replay golden flooding fixtures on the edge backend, and cover the
dispatch surface (auto-selection from the node-count threshold, the
replication rejection) and the up-front memory guard.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    weighted_configuration_model,
    weighted_erdos_renyi,
    weighted_kronecker,
    weighted_watts_strogatz,
)
from repro.scenario import (
    ScenarioError,
    ScenarioSpec,
    library_scenario_names,
    load_named_scenario,
    run_scenario,
)
from repro.simulation import (
    EDGE_AUTO_NODE_THRESHOLD,
    EdgeEngine,
    EngineSelectionError,
    FastEngine,
    PolicyCapability,
    RoundPolicySpec,
    SimulationError,
    resolve_backend,
    set_default_backend,
)
from repro.simulation.golden import capture_golden_trace
from repro.simulation.rng import make_numpy_rng

LIBRARY = library_scenario_names()
GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")


def trajectory(result):
    """The bit-for-bit comparison key of one run."""
    return (result.rounds_simulated, result.time, result.metrics.as_dict())


def edge_and_oracle(spec: ScenarioSpec):
    """The same scenario on the edge backend and the numpy-rep-0 oracle.

    The batch backend's replication 0 is the committed numpy-mode anchor
    (itself verified against the sequential fast loop in
    ``test_batch_engine``), and ``engine="batch"`` is the one spec shape
    whose ``reps == 1`` run still uses the ``("rep", 0)`` seed label.
    """
    edge = run_scenario(spec.patched({"engine": "edge"}))
    oracle = run_scenario(spec.patched({"engine": "batch"})).results[0]
    return edge, oracle


# ----------------------------------------------------------------------
# The parity contract, over the whole bundled library
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", LIBRARY)
def test_edge_matches_numpy_rep0_per_library_scenario(name):
    edge, oracle = edge_and_oracle(load_named_scenario(name))
    assert trajectory(edge) == trajectory(oracle)
    assert edge.metrics.edge_activations == oracle.metrics.edge_activations


@settings(max_examples=6, deadline=None)
@given(
    name=st.sampled_from(LIBRARY),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_edge_run_matches_numpy_rep0_exactly(name, seed):
    # An unlucky (scenario, seed) draw can disconnect a faulted graph, in
    # which case dissemination never reaches the stop condition; the
    # parity contract then is that BOTH backends stall, not that the run
    # completes.  The cap keeps a stalling draw from burning 100k rounds.
    spec = load_named_scenario(name).patched({"seed": seed, "max_rounds": 3000})
    try:
        edge = ("completed", trajectory(run_scenario(spec.patched({"engine": "edge"}))))
    except RuntimeError:
        edge = ("stalled", None)
    try:
        oracle = (
            "completed",
            trajectory(run_scenario(spec.patched({"engine": "batch"})).results[0]),
        )
    except RuntimeError:
        oracle = ("stalled", None)
    assert edge == oracle


# ----------------------------------------------------------------------
# Engine-level parity: gates, blocking, multi-word planes
# ----------------------------------------------------------------------
def engine_pair(graph, blocking=False):
    return EdgeEngine(graph.copy(), blocking=blocking), FastEngine(graph.copy(), blocking=blocking)


def numpy_spec(gate, seed):
    return RoundPolicySpec(select="uniform-random", gate=gate, rng=make_numpy_rng(seed, "rep", 0))


@pytest.mark.parametrize("gate", ["all", "informed-only", "uninformed-only"])
@pytest.mark.parametrize("blocking", [False, True])
def test_edge_step_stream_matches_fast_numpy_mode(gate, blocking):
    graph = weighted_erdos_renyi(40, 0.2, seed=9)
    source = graph.nodes()[0]
    edge, fast = engine_pair(graph, blocking=blocking)
    rumor_e = edge.seed_rumor(source)
    rumor_f = fast.seed_rumor(source)
    metrics_e = edge.run(numpy_spec(gate, 5), lambda e: e.dissemination_complete(rumor_e))
    metrics_f = fast.run(numpy_spec(gate, 5), lambda e: e.dissemination_complete(rumor_f))
    assert metrics_e.as_dict() == metrics_f.as_dict()
    assert metrics_e.edge_activations == metrics_f.edge_activations


def test_edge_all_to_all_parity_beyond_64_rumors_multi_word_planes():
    # 80 rumors force a second uint64 knowledge word, exercising the
    # generic multi-word gather/merge/popcount paths on both sides.
    graph = weighted_erdos_renyi(80, 0.15, seed=2)
    edge, fast = engine_pair(graph)
    edge.seed_all_rumors()
    fast.seed_all_rumors()
    metrics_e = edge.run(numpy_spec("all", 3), lambda e: e.all_to_all_complete())
    metrics_f = fast.run(numpy_spec("all", 3), lambda e: e.all_to_all_complete())
    assert metrics_e.as_dict() == metrics_f.as_dict()
    assert metrics_e.max_payload_size > 64  # really multi-word


def test_edge_local_broadcast_parity():
    graph = weighted_erdos_renyi(36, 0.2, seed=4)
    edge, fast = engine_pair(graph)
    edge.seed_all_rumors()
    fast.seed_all_rumors()
    metrics_e = edge.run(numpy_spec("all", 7), lambda e: e.local_broadcast_complete())
    metrics_f = fast.run(numpy_spec("all", 7), lambda e: e.local_broadcast_complete())
    assert metrics_e.as_dict() == metrics_f.as_dict()


# ----------------------------------------------------------------------
# Suppressed / lost accounting on the fault and churn scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["crash-pushpull-er48", "churn-crash-pushpull-er48"])
def test_edge_suppressed_and_lost_columns_match_oracle(name):
    edge, oracle = edge_and_oracle(load_named_scenario(name))
    assert edge.metrics.suppressed_exchanges == oracle.metrics.suppressed_exchanges
    assert edge.metrics.lost_exchanges == oracle.metrics.lost_exchanges
    if name == "crash-pushpull-er48":
        assert edge.metrics.suppressed_exchanges > 0  # the scenario actually suppresses


# ----------------------------------------------------------------------
# Golden-trace replay (flooding is round-robin: rng-mode independent,
# so the committed reference fixtures replay bit-for-bit on this backend)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topology", ["er24", "path16"])
def test_edge_engine_replays_flooding_fixture(topology):
    path = os.path.join(GOLDEN_DIR, f"flooding__{topology}.json")
    with open(path, "r", encoding="utf-8") as handle:
        fixture = json.load(handle)
    assert capture_golden_trace("flooding", topology, backend="edge") == fixture


# ----------------------------------------------------------------------
# Dispatch and validation
# ----------------------------------------------------------------------
def test_resolve_backend_edge_routing():
    uniform = PolicyCapability.UNIFORM_RANDOM
    assert resolve_backend("edge", uniform) == "edge"
    assert resolve_backend("auto", uniform, num_nodes=EDGE_AUTO_NODE_THRESHOLD) == "edge"
    assert resolve_backend("auto", uniform, num_nodes=EDGE_AUTO_NODE_THRESHOLD - 1) == "fast"
    assert resolve_backend("auto", uniform) == "fast"
    with pytest.raises(EngineSelectionError, match="no replication axis"):
        resolve_backend("edge", uniform, reps=4)
    with pytest.raises(EngineSelectionError, match="declarative"):
        resolve_backend("edge", PolicyCapability.ARBITRARY_CALLBACK)
    with pytest.raises(EngineSelectionError, match="event traces"):
        resolve_backend("edge", uniform, trace=object())


def test_set_default_backend_pins_edge_for_auto():
    uniform = PolicyCapability.UNIFORM_RANDOM
    set_default_backend("edge")
    try:
        assert resolve_backend("auto", uniform, num_nodes=10) == "edge"
    finally:
        set_default_backend("auto")
    assert resolve_backend("auto", uniform, num_nodes=10) == "fast"


def test_scenario_rejects_replicated_edge_runs():
    with pytest.raises(ScenarioError, match="no replication axis"):
        ScenarioSpec(name="bad", algorithm="push-pull", engine="edge", reps=4).validate()


def test_edge_engine_rejects_python_random_for_uniform_selection():
    graph = weighted_erdos_renyi(16, 0.4, seed=1)
    engine = EdgeEngine(graph)
    engine.seed_rumor(graph.nodes()[0])
    import random

    spec = RoundPolicySpec(select="uniform-random", gate="all", rng=random.Random(0))
    with pytest.raises(TypeError, match="numpy Generator"):
        engine.step(spec)
    with pytest.raises(TypeError, match="declarative"):
        engine.step(object())


# ----------------------------------------------------------------------
# Memory guard
# ----------------------------------------------------------------------
def test_memory_guard_refuses_construction_beyond_limit():
    graph = weighted_erdos_renyi(64, 0.3, seed=1)
    with pytest.raises(SimulationError, match="edge backend refuses"):
        EdgeEngine(graph, memory_limit=1024)


def test_memory_guard_blocks_all_to_all_growth_with_estimate():
    graph = weighted_erdos_renyi(200, 0.2, seed=3)
    engine = EdgeEngine(graph)
    # Tighten the budget so the single-rumor plane fits exactly but the
    # all-to-all growth (n^2/8 bytes of knowledge) cannot.
    engine._memory_limit = engine._estimate_bytes(words=1)["total"]
    with pytest.raises(SimulationError, match="memory limit") as excinfo:
        engine.seed_all_rumors()
    assert "GiB" in str(excinfo.value)  # the estimate is in the message
    # The guarded engine is still usable at its current size.
    rumor = engine.seed_rumor(graph.nodes()[0])
    engine.run(numpy_spec("all", 1), lambda e: e.dissemination_complete(rumor))


# ----------------------------------------------------------------------
# SIR push-pull: the forgetting gate's cross-backend contract
# ----------------------------------------------------------------------
SIR_FAMILIES = (
    ("watts-strogatz", lambda: weighted_watts_strogatz(48, k=6, rewire=0.2, seed=13)),
    ("configuration-model", lambda: weighted_configuration_model(48, gamma=2.4, min_degree=2, seed=13)),
    ("kronecker", lambda: weighted_kronecker(48, edge_factor=4, seed=13)),
)


def sir_spec(seed, forget_after=9):
    return RoundPolicySpec(
        select="uniform-random",
        gate="sir",
        forget_after=forget_after,
        rng=make_numpy_rng(seed, "rep", 0),
    )


def run_sir(engine, seed, forget_after=9):
    metrics = engine.run(
        sir_spec(seed, forget_after),
        lambda e: e.sir_ever_complete() or e.sir_quiescent(),
    )
    return metrics


@pytest.mark.parametrize("family,build", SIR_FAMILIES, ids=[f for f, _ in SIR_FAMILIES])
def test_edge_sir_gate_matches_fast_numpy_mode(family, build):
    graph = build()
    edge, fast = engine_pair(graph)
    edge.seed_rumor(graph.nodes()[0])
    fast.seed_rumor(graph.nodes()[0])
    metrics_e = run_sir(edge, 17)
    metrics_f = run_sir(fast, 17)
    assert metrics_e.as_dict() == metrics_f.as_dict()
    assert metrics_e.edge_activations == metrics_f.edge_activations
    assert edge.sir_stats() == fast.sir_stats()
    assert edge.sir_ever_complete() == fast.sir_ever_complete()
    assert edge.sir_quiescent() == fast.sir_quiescent()


def test_edge_sir_recovery_actually_silences_nodes():
    # forget_after=1: every informed node recovers after a single active
    # round, so the epidemic dies out long before the rumor covers a
    # 200-node ring-like graph — and a quiescent engine stops cleanly.
    graph = weighted_watts_strogatz(200, k=4, rewire=0.0, seed=3)
    edge, fast = engine_pair(graph)
    edge.seed_rumor(graph.nodes()[0])
    fast.seed_rumor(graph.nodes()[0])
    metrics_e = run_sir(edge, 5, forget_after=1)
    metrics_f = run_sir(fast, 5, forget_after=1)
    assert metrics_e.as_dict() == metrics_f.as_dict()
    assert edge.sir_stats() == fast.sir_stats()
    stats = edge.sir_stats()
    assert edge.sir_quiescent() and not edge.sir_ever_complete()
    assert stats["ever_informed"] < 200
    assert stats["infected"] == 0  # everyone who learned it has forgotten
    assert stats["recovered"] == stats["ever_informed"]
