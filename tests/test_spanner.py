"""Unit tests for the Baswana–Sen directed spanner (repro.graphs.spanner)."""

from __future__ import annotations

import math

import pytest

from repro.graphs import (
    GraphError,
    WeightedGraph,
    baswana_sen_spanner,
    clique,
    grid_graph,
    path_graph,
    spanner_stretch,
    star,
    uniform_latency,
    assign_latencies,
    weighted_erdos_renyi,
)


class TestSpannerBasics:
    def test_spanner_subset_of_graph(self, small_weighted_er):
        spanner = baswana_sen_spanner(small_weighted_er, seed=1)
        for edge in spanner.graph.edges():
            assert small_weighted_er.has_edge(edge.u, edge.v)
            assert small_weighted_er.latency(edge.u, edge.v) == edge.latency

    def test_spanner_preserves_connectivity(self, small_weighted_er):
        spanner = baswana_sen_spanner(small_weighted_er, seed=1)
        assert spanner.graph.is_connected()

    def test_spanner_keeps_all_nodes(self, small_weighted_er):
        spanner = baswana_sen_spanner(small_weighted_er, seed=2)
        assert set(spanner.graph.nodes()) == set(small_weighted_er.nodes())

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            baswana_sen_spanner(WeightedGraph())

    def test_invalid_k_rejected(self, small_weighted_er):
        with pytest.raises(GraphError):
            baswana_sen_spanner(small_weighted_er, k=0)

    def test_bad_n_estimate_rejected(self, small_weighted_er):
        with pytest.raises(GraphError):
            baswana_sen_spanner(small_weighted_er, n_estimate=2)

    def test_tree_is_its_own_spanner(self):
        graph = path_graph(10)
        spanner = baswana_sen_spanner(graph, seed=0)
        assert spanner.num_edges == graph.num_edges

    def test_guaranteed_stretch_value(self, small_weighted_er):
        spanner = baswana_sen_spanner(small_weighted_er, k=3, seed=0)
        assert spanner.guaranteed_stretch() == 5


class TestSpannerQuality:
    def test_clique_spanner_is_sparse(self):
        graph = clique(40)
        spanner = baswana_sen_spanner(graph, seed=1)
        # n log n edges is far less than the clique's ~n^2/2.
        assert spanner.num_edges < graph.num_edges / 2
        assert spanner.num_edges <= 6 * 40 * math.log2(40)

    def test_out_degree_bound(self):
        graph = assign_latencies(clique(50), uniform_latency(1, 20), seed=3)
        spanner = baswana_sen_spanner(graph, seed=3)
        # Theorem 20: out-degree O(log n); allow a generous constant.
        assert spanner.max_out_degree() <= 10 * math.log2(50)

    def test_stretch_within_guarantee(self):
        graph = weighted_erdos_renyi(30, 0.3, seed=4)
        spanner = baswana_sen_spanner(graph, k=3, seed=4)
        measured = spanner_stretch(graph, spanner.graph)
        assert measured <= spanner.guaranteed_stretch() + 1e-9

    def test_stretch_log_k_default(self):
        graph = weighted_erdos_renyi(40, 0.25, seed=5)
        spanner = baswana_sen_spanner(graph, seed=5)
        measured = spanner_stretch(graph, spanner.graph)
        assert measured <= spanner.guaranteed_stretch() + 1e-9

    def test_grid_spanner_stretch(self):
        graph = grid_graph(6, 6)
        spanner = baswana_sen_spanner(graph, k=2, seed=0)
        assert spanner_stretch(graph, spanner.graph) <= 3 + 1e-9

    def test_star_spanner_keeps_all_edges(self):
        graph = star(20)
        spanner = baswana_sen_spanner(graph, seed=0)
        # Every leaf's only edge must survive.
        assert spanner.num_edges == 19

    def test_out_edges_cover_spanner_edges(self, small_weighted_er):
        spanner = baswana_sen_spanner(small_weighted_er, seed=6)
        oriented = set()
        for node, targets in spanner.out_edges.items():
            for target, _latency in targets:
                oriented.add(frozenset((node, target)))
        undirected = {frozenset((e.u, e.v)) for e in spanner.graph.edges()}
        assert oriented == undirected

    def test_out_degree_accessor(self, small_weighted_er):
        spanner = baswana_sen_spanner(small_weighted_er, seed=7)
        total = sum(spanner.out_degree(node) for node in small_weighted_er.nodes())
        assert total == sum(len(v) for v in spanner.out_edges.values())

    def test_deterministic_given_seed(self, small_weighted_er):
        a = baswana_sen_spanner(small_weighted_er, seed=11)
        b = baswana_sen_spanner(small_weighted_er, seed=11)
        assert a.graph == b.graph
        assert a.out_edges == b.out_edges
