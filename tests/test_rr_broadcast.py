"""Unit tests for RR Broadcast on a directed spanner (repro.gossip.rr_broadcast)."""

from __future__ import annotations

import pytest

from repro.gossip import rr_broadcast
from repro.graphs import (
    GraphError,
    baswana_sen_spanner,
    clique,
    path_graph,
    weighted_diameter,
    weighted_erdos_renyi,
)
from repro.simulation import Rumor


class TestRRBroadcast:
    def test_all_to_all_on_clique_spanner(self):
        graph = clique(12)
        spanner = baswana_sen_spanner(graph, seed=1)
        k = int(weighted_diameter(spanner.graph)) + 1
        result = rr_broadcast(spanner, k=k)
        assert result.complete
        everyone = set(graph.nodes())
        for rumors in result.knowledge.values():
            assert {r.origin for r in rumors} >= everyone

    def test_all_to_all_on_weighted_er(self):
        graph = weighted_erdos_renyi(24, 0.25, seed=2)
        spanner = baswana_sen_spanner(graph, seed=2)
        k = int(weighted_diameter(spanner.graph)) + 1
        result = rr_broadcast(spanner, k=k)
        assert result.complete

    def test_round_budget_formula(self):
        graph = path_graph(6)
        spanner = baswana_sen_spanner(graph, seed=0)
        result = rr_broadcast(spanner, k=5, stop_early=False, require_all_to_all=False)
        max_out = max(len(v) for v in spanner.out_edges.values())
        assert result.round_budget == 5 * max_out + 5
        assert result.rounds == result.round_budget

    def test_completion_within_budget(self):
        graph = weighted_erdos_renyi(20, 0.3, seed=3)
        spanner = baswana_sen_spanner(graph, seed=3)
        k = int(weighted_diameter(spanner.graph)) + 1
        result = rr_broadcast(spanner, k=k)
        assert result.complete
        assert result.rounds <= result.round_budget + graph.max_latency() + 1

    def test_small_k_excludes_slow_edges(self):
        # A two-node spanner whose only edge is slower than k cannot finish.
        from repro.graphs import WeightedGraph
        from repro.graphs.spanner import DirectedSpanner

        graph = WeightedGraph(range(2))
        graph.add_edge(0, 1, 10)
        spanner = DirectedSpanner(graph=graph, out_edges={0: [(1, 10)], 1: []}, stretch_parameter=1)
        result = rr_broadcast(spanner, k=2)
        assert not result.complete

    def test_custom_initial_knowledge(self):
        graph = clique(8)
        spanner = baswana_sen_spanner(graph, seed=4)
        knowledge = {0: {Rumor(origin=0, payload="only-source")}}
        result = rr_broadcast(spanner, k=4, knowledge=knowledge)
        assert result.complete
        for rumors in result.knowledge.values():
            assert any(r.origin == 0 for r in rumors)

    def test_invalid_k(self):
        spanner = baswana_sen_spanner(clique(4), seed=0)
        with pytest.raises(GraphError):
            rr_broadcast(spanner, k=0)

    def test_stop_early_reduces_rounds(self):
        graph = clique(10)
        spanner = baswana_sen_spanner(graph, seed=5)
        k = 20
        eager = rr_broadcast(spanner, k=k, stop_early=True)
        lazy = rr_broadcast(spanner, k=k, stop_early=False, require_all_to_all=True)
        assert eager.complete and lazy.complete
        assert eager.rounds <= lazy.rounds
