"""Unit tests for the lower-bound gadget constructions (repro.graphs.gadgets)."""

from __future__ import annotations

import math

import pytest

from repro.graphs import (
    GraphError,
    guessing_gadget,
    symmetric_guessing_gadget,
    theorem9_network,
    theorem10_network,
    theorem13_parameters,
    theorem13_ring_network,
    weighted_diameter,
)


class TestGuessingGadget:
    def test_structure(self):
        graph, info = guessing_gadget(m=4, lo=1, hi=10, fast_edges={(0, 0), (2, 3)})
        # Left clique K4 (6 edges) + complete bipartite 16 cross edges.
        assert graph.num_nodes == 8
        assert graph.num_edges == 6 + 16
        assert info.m == 4
        assert len(info.fast_edges) == 2

    def test_latency_assignment(self):
        graph, info = guessing_gadget(m=3, lo=2, hi=9, fast_edges={(1, 1)})
        left, right = info.left, info.right
        assert graph.latency(left[1], right[1]) == 2
        assert graph.latency(left[0], right[0]) == 9
        # Left clique is unit latency.
        assert graph.latency(left[0], left[1]) == 1

    def test_is_fast_symmetry(self):
        _graph, info = guessing_gadget(m=3, lo=1, hi=5, fast_edges={(0, 2)})
        u, v = info.left[0], info.right[2]
        assert info.is_fast(u, v)
        assert info.is_fast(v, u)
        assert not info.is_fast(info.left[1], info.right[2])

    def test_cross_edges_enumeration(self):
        _graph, info = guessing_gadget(m=3, lo=1, hi=5, fast_edges=set())
        assert len(info.cross_edges()) == 9

    def test_node_offset(self):
        graph, info = guessing_gadget(m=2, lo=1, hi=3, fast_edges=set(), node_offset=100)
        assert min(graph.nodes()) == 100
        assert info.left == (100, 101)
        assert info.right == (102, 103)

    def test_invalid_fast_edge_index(self):
        with pytest.raises(GraphError):
            guessing_gadget(m=2, lo=1, hi=3, fast_edges={(0, 5)})

    def test_invalid_latency_order(self):
        with pytest.raises(GraphError):
            guessing_gadget(m=2, lo=5, hi=3, fast_edges=set())

    def test_symmetric_gadget_has_both_cliques(self):
        graph, info = symmetric_guessing_gadget(m=4, lo=1, hi=8, fast_edges={(0, 0)})
        assert info.symmetric
        # Two K4 cliques (12 edges) + 16 cross edges.
        assert graph.num_edges == 12 + 16
        assert graph.latency(info.right[0], info.right[1]) == 1


class TestTheorem9Network:
    def test_degree_and_diameter(self):
        graph, info = theorem9_network(n=64, delta=8, seed=1)
        assert graph.num_nodes == 64
        # The gadget nodes dominate the degree: each left node sees the
        # clique (delta-1), all right nodes (delta), and the expander attach node.
        assert graph.max_degree() >= 2 * 8 - 1
        assert graph.is_connected()
        # Weighted diameter stays logarithmic-ish despite the slow cross edges.
        assert weighted_diameter(graph) <= 4 * math.log2(64) + 4

    def test_single_fast_edge(self):
        _graph, info = theorem9_network(n=40, delta=6, seed=3)
        assert len(info.fast_edges) == 1
        assert info.fast_latency == 1
        assert info.slow_latency == 6

    def test_small_remainder_uses_clique(self):
        graph, _info = theorem9_network(n=2 * 6 + 3, delta=6, seed=0)
        assert graph.num_nodes == 15
        assert graph.is_connected()

    def test_exact_gadget_only(self):
        graph, info = theorem9_network(n=12, delta=6, seed=0)
        assert graph.num_nodes == 12
        assert set(info.left) | set(info.right) == set(graph.nodes())

    def test_validation(self):
        with pytest.raises(GraphError):
            theorem9_network(n=10, delta=6)
        with pytest.raises(GraphError):
            theorem9_network(n=10, delta=1)

    def test_deterministic(self):
        g1, i1 = theorem9_network(n=40, delta=6, seed=7)
        g2, i2 = theorem9_network(n=40, delta=6, seed=7)
        assert g1 == g2
        assert i1.fast_edges == i2.fast_edges


class TestTheorem10Network:
    def test_size_and_latencies(self):
        graph, info = theorem10_network(n=10, phi=0.2, ell=3, seed=1)
        assert graph.num_nodes == 20
        assert info.fast_latency == 3
        assert info.slow_latency == 100
        latencies = set(graph.distinct_latencies())
        assert latencies <= {1, 3, 100}

    def test_every_right_node_covered(self):
        _graph, info = theorem10_network(n=12, phi=0.15, ell=1, seed=2)
        covered = {v for (_u, v) in info.fast_edges}
        assert covered == set(info.right)

    def test_diameter_is_order_ell(self):
        graph, _info = theorem10_network(n=10, phi=0.4, ell=4, seed=3)
        assert weighted_diameter(graph) <= 3 * 4

    def test_fast_edge_probability_scaling(self):
        _g_low, info_low = theorem10_network(n=20, phi=0.05, seed=5, ensure_covered=False)
        _g_high, info_high = theorem10_network(n=20, phi=0.5, seed=5, ensure_covered=False)
        assert len(info_high.fast_edges) > len(info_low.fast_edges)

    def test_validation(self):
        with pytest.raises(GraphError):
            theorem10_network(n=1, phi=0.5)
        with pytest.raises(GraphError):
            theorem10_network(n=10, phi=0.0)
        with pytest.raises(GraphError):
            theorem10_network(n=10, phi=0.5, ell=0)


class TestTheorem13Ring:
    def test_parameters(self):
        k, s, c = theorem13_parameters(n=32, alpha=0.25)
        assert k >= 4
        assert s >= 2
        assert k % 2 == 0

    def test_parameters_validation(self):
        with pytest.raises(GraphError):
            theorem13_parameters(n=2, alpha=0.5)
        with pytest.raises(GraphError):
            theorem13_parameters(n=32, alpha=0)

    def test_network_structure(self):
        graph, info = theorem13_ring_network(n=24, alpha=0.25, ell=8, seed=1)
        assert info.num_layers >= 4
        assert graph.num_nodes == info.num_layers * info.layer_size
        assert graph.is_connected()
        # Each consecutive layer pair hides exactly one fast edge.
        assert all(len(g.fast_edges) == 1 for g in info.gadgets)
        assert len(info.gadgets) == info.num_layers

    def test_regularity(self):
        graph, info = theorem13_ring_network(n=24, alpha=0.25, ell=4, seed=2)
        s = info.layer_size
        degrees = {graph.degree(v) for v in graph.nodes()}
        assert degrees == {3 * s - 1}

    def test_latency_values(self):
        graph, info = theorem13_ring_network(n=20, alpha=0.3, ell=16, seed=3)
        assert set(graph.distinct_latencies()) == {1, 16}

    def test_validation(self):
        with pytest.raises(GraphError):
            theorem13_ring_network(n=24, alpha=0.25, ell=0)

    def test_deterministic(self):
        g1, _ = theorem13_ring_network(n=24, alpha=0.25, ell=8, seed=9)
        g2, _ = theorem13_ring_network(n=24, alpha=0.25, ell=8, seed=9)
        assert g1 == g2
