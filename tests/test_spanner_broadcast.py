"""Unit tests for Spanner Broadcast (repro.gossip.spanner_broadcast)."""

from __future__ import annotations

import math

import pytest

from repro.core import extract_parameters, upper_bound_spanner_broadcast
from repro.gossip import SpannerBroadcast, Task, spanner_broadcast_attempt
from repro.graphs import (
    GraphError,
    clique,
    path_graph,
    two_cluster_slow_bridge,
    weighted_diameter,
    weighted_erdos_renyi,
)
from repro.simulation import Rumor


class TestSpannerBroadcastAttempt:
    def test_attempt_with_full_estimate_completes(self):
        graph = weighted_erdos_renyi(16, 0.3, seed=1)
        estimate = int(weighted_diameter(graph))
        knowledge = {node: {Rumor(origin=node)} for node in graph.nodes()}
        updated, time, phases = spanner_broadcast_attempt(graph, knowledge, estimate, seed=1)
        everyone = set(graph.nodes())
        assert all({r.origin for r in updated[node]} >= everyone for node in graph.nodes())
        assert time > 0
        assert phases["discovery"] > 0

    def test_attempt_with_small_estimate_is_partial(self):
        graph = two_cluster_slow_bridge(4, fast_latency=1, slow_latency=16, bridges=1)
        knowledge = {node: {Rumor(origin=node)} for node in graph.nodes()}
        updated, _time, _phases = spanner_broadcast_attempt(graph, knowledge, estimate=1, seed=0)
        # The slow bridge is excluded with estimate 1, so the two cliques
        # cannot have exchanged rumors.
        left_origins = {r.origin for r in updated[0]}
        assert 4 not in left_origins

    def test_invalid_estimate(self):
        graph = clique(4)
        knowledge = {node: {Rumor(origin=node)} for node in graph.nodes()}
        with pytest.raises(GraphError):
            spanner_broadcast_attempt(graph, knowledge, estimate=0)


class TestSpannerBroadcastKnownDiameter:
    def test_completes_all_to_all(self):
        graph = weighted_erdos_renyi(18, 0.3, seed=2)
        diameter = int(weighted_diameter(graph))
        result = SpannerBroadcast(diameter=diameter).run(graph, seed=2)
        assert result.complete
        assert result.task is Task.ALL_TO_ALL
        assert result.time > 0

    def test_time_within_theoretical_shape(self):
        graph = weighted_erdos_renyi(20, 0.3, seed=3)
        diameter = int(weighted_diameter(graph))
        result = SpannerBroadcast(diameter=diameter).run(graph, seed=3)
        params = extract_parameters(graph, seed=3)
        # The measured time should stay within a constant factor of D log^3 n.
        assert result.time <= 30 * upper_bound_spanner_broadcast(params)

    def test_details_contain_phase_breakdown(self):
        graph = clique(10)
        result = SpannerBroadcast(diameter=1).run(graph, seed=0)
        assert "discovery" in result.details
        assert "rr_rounds" in result.details
        assert result.details["estimates"] == [1]


class TestSpannerBroadcastUnknownDiameter:
    def test_guess_and_double_completes(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=8, bridges=1)
        result = SpannerBroadcast().run(graph, seed=1)
        assert result.complete
        assert result.details["epochs"] >= 3  # estimates 1, 2, 4, 8
        assert result.details["final_estimate"] >= 8

    def test_unknown_slower_than_known(self):
        graph = weighted_erdos_renyi(14, 0.35, seed=4)
        diameter = int(weighted_diameter(graph))
        known = SpannerBroadcast(diameter=diameter).run(graph, seed=4)
        unknown = SpannerBroadcast().run(graph, seed=4)
        assert unknown.complete and known.complete
        assert unknown.time >= known.time

    def test_disconnected_rejected(self):
        from repro.graphs import WeightedGraph

        graph = WeightedGraph(range(4))
        graph.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            SpannerBroadcast().run(graph)
