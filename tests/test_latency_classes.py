"""Unit tests for repro.core.latency_classes."""

from __future__ import annotations

import pytest

from repro.core import (
    classify_edges,
    cut_class_counts,
    latency_class_index,
    latency_class_upper_bound,
    nonempty_latency_classes,
    num_latency_classes,
)
from repro.graphs import Cut, GraphError, WeightedGraph


class TestClassIndex:
    @pytest.mark.parametrize(
        "latency,expected",
        [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4), (17, 5), (1024, 10)],
    )
    def test_class_boundaries(self, latency, expected):
        assert latency_class_index(latency) == expected

    def test_invalid_latency(self):
        with pytest.raises(GraphError):
            latency_class_index(0)

    def test_class_upper_bound(self):
        assert latency_class_upper_bound(1) == 2
        assert latency_class_upper_bound(3) == 8

    def test_class_upper_bound_validation(self):
        with pytest.raises(GraphError):
            latency_class_upper_bound(0)

    def test_latency_within_its_class_bounds(self):
        for latency in range(1, 200):
            index = latency_class_index(latency)
            upper = latency_class_upper_bound(index)
            lower = latency_class_upper_bound(index - 1) if index > 1 else 0
            assert lower < latency <= upper


class TestClassCounts:
    def test_num_latency_classes(self):
        assert num_latency_classes(1) == 1
        assert num_latency_classes(2) == 1
        assert num_latency_classes(3) == 2
        assert num_latency_classes(16) == 4
        assert num_latency_classes(17) == 5

    def test_num_latency_classes_validation(self):
        with pytest.raises(GraphError):
            num_latency_classes(0)

    def test_classify_edges(self, triangle):
        groups = classify_edges(triangle.edges())
        assert sorted(groups) == [1, 2]
        assert len(groups[1]) == 2  # latencies 1 and 2
        assert len(groups[2]) == 1  # latency 4

    def test_nonempty_classes(self, triangle):
        assert nonempty_latency_classes(triangle) == [1, 2]

    def test_nonempty_classes_unit_graph(self, small_clique):
        assert nonempty_latency_classes(small_clique) == [1]

    def test_cut_class_counts(self, triangle):
        counts = cut_class_counts(triangle, Cut.of([0]))
        # Edges incident to node 0: latency 1 (class 1) and latency 4 (class 2).
        assert counts[1] == 1
        assert counts[2] == 1

    def test_cut_class_counts_no_crossing(self):
        graph = WeightedGraph(range(4))
        graph.add_edge(0, 1, 1)
        graph.add_edge(2, 3, 1)
        counts = cut_class_counts(graph, Cut.of([0, 1]))
        assert sum(counts.values()) == 0
