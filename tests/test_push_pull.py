"""Unit tests for push / pull / push-pull gossip (repro.gossip.push_pull)."""

from __future__ import annotations

import math

import pytest

from repro.gossip import PullGossip, PushGossip, PushPullGossip, Task, run_push_pull
from repro.graphs import (
    GraphError,
    WeightedGraph,
    clique,
    path_graph,
    star,
    two_cluster_slow_bridge,
    weighted_erdos_renyi,
)


class TestPushPull:
    def test_completes_on_clique(self):
        result = run_push_pull(clique(16), source=0, seed=1)
        assert result.complete
        assert result.task is Task.ONE_TO_ALL
        # O(log n) rounds on a clique; allow a generous constant.
        assert result.time <= 10 * math.log2(16)

    def test_completes_on_path(self):
        result = run_push_pull(path_graph(12), source=0, seed=2)
        assert result.complete
        assert result.time >= 11  # at least the diameter

    def test_all_to_all_task(self):
        result = PushPullGossip(task=Task.ALL_TO_ALL).run(clique(10), seed=3)
        assert result.complete
        assert result.task is Task.ALL_TO_ALL

    def test_local_broadcast_task(self):
        result = PushPullGossip(task=Task.LOCAL_BROADCAST).run(path_graph(8), seed=4)
        assert result.complete
        assert result.task is Task.LOCAL_BROADCAST

    def test_default_source_is_first_node(self):
        result = PushPullGossip().run(path_graph(5), seed=0)
        assert result.complete

    def test_invalid_source_rejected(self):
        with pytest.raises(GraphError):
            PushPullGossip().run(clique(4), source=99, seed=0)

    def test_disconnected_graph_rejected(self):
        graph = WeightedGraph(range(4))
        graph.add_edge(0, 1, 1)
        graph.add_edge(2, 3, 1)
        with pytest.raises(GraphError):
            run_push_pull(graph, source=0)

    def test_latency_delays_completion(self):
        fast = two_cluster_slow_bridge(4, fast_latency=1, slow_latency=1, bridges=1)
        slow = two_cluster_slow_bridge(4, fast_latency=1, slow_latency=40, bridges=1)
        fast_time = run_push_pull(fast, source=0, seed=5).time
        slow_time = run_push_pull(slow, source=0, seed=5).time
        assert slow_time > fast_time
        assert slow_time >= 40  # the rumor must cross the latency-40 bridge

    def test_deterministic_given_seed(self):
        graph = weighted_erdos_renyi(20, 0.3, seed=1)
        a = run_push_pull(graph, source=0, seed=9)
        b = run_push_pull(graph, source=0, seed=9)
        assert a.time == b.time
        assert a.metrics.messages == b.metrics.messages

    def test_metrics_populated(self):
        result = run_push_pull(clique(8), source=0, seed=1)
        assert result.metrics.activations >= result.rounds_simulated
        assert result.metrics.messages > 0
        assert result.as_dict()["algorithm"] == "push-pull"


class TestPushAndPull:
    def test_push_completes_on_clique(self):
        result = PushGossip().run(clique(12), source=0, seed=1)
        assert result.complete

    def test_pull_completes_on_clique(self):
        result = PullGossip().run(clique(12), source=0, seed=1)
        assert result.complete

    def test_push_slow_on_star_from_leaf(self):
        # Push-only from a leaf: the hub must be contacted by the informed
        # leaf, then the hub pushes to each remaining leaf one at a time, so
        # the completion time is Ω(n).
        graph = star(16)
        push_time = PushGossip().run(graph, source=1, seed=2).time
        push_pull_time = run_push_pull(graph, source=1, seed=2).time
        assert push_time >= graph.num_nodes - 3
        assert push_time >= push_pull_time

    def test_push_pull_names(self):
        assert PushGossip().name == "push"
        assert PullGossip().name == "pull"
        assert PushPullGossip().name == "push-pull"
