"""Unit tests for repro.graphs.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    GraphError,
    WeightedGraph,
    assign_latencies,
    barabasi_albert,
    barabasi_albert_csr,
    configuration_model,
    configuration_model_csr,
    erdos_renyi_csr,
    kronecker,
    kronecker_csr,
    watts_strogatz,
    watts_strogatz_csr,
    bimodal_latency,
    binary_tree,
    clique,
    constant_latency,
    cycle_graph,
    dumbbell,
    erdos_renyi,
    geometric_latency,
    grid_graph,
    layered_ring,
    path_graph,
    power_law_latency,
    random_geometric,
    random_regular_expander,
    star,
    two_cluster_slow_bridge,
    uniform_latency,
    weighted_barabasi_albert,
    weighted_clique,
    weighted_configuration_model,
    weighted_erdos_renyi,
    weighted_expander,
    weighted_grid,
    weighted_kronecker,
    weighted_watts_strogatz,
    weighted_diameter,
)
from repro.graphs.generators import _csr_from_edge_stream


class TestBasicTopologies:
    def test_clique(self):
        graph = clique(5)
        assert graph.num_edges == 10
        assert graph.is_regular()

    def test_clique_requires_positive_n(self):
        with pytest.raises(GraphError):
            clique(0)

    def test_star(self):
        graph = star(6)
        assert graph.degree(0) == 5
        assert graph.max_degree() == 5
        assert graph.num_edges == 5

    def test_path_and_cycle(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 4 * 2
        assert graph.is_connected()

    def test_binary_tree(self):
        graph = binary_tree(3)
        assert graph.num_nodes == 15
        assert graph.num_edges == 14
        assert graph.is_connected()

    def test_dumbbell(self):
        graph = dumbbell(4, bridge_latency=8, bridge_length=3)
        assert graph.is_connected()
        assert graph.max_latency() == 8

    def test_two_cluster_slow_bridge(self):
        graph = two_cluster_slow_bridge(4, slow_latency=32, bridges=2)
        assert graph.num_nodes == 8
        assert graph.is_connected()
        assert graph.max_latency() == 32
        with pytest.raises(GraphError):
            two_cluster_slow_bridge(4, bridges=5)

    def test_layered_ring(self):
        graph = layered_ring(4, 3, inter_latency=5)
        assert graph.num_nodes == 12
        assert graph.is_connected()
        assert graph.max_latency() == 5
        with pytest.raises(GraphError):
            layered_ring(2, 3)


class TestRandomTopologies:
    def test_erdos_renyi_connected(self):
        graph = erdos_renyi(40, 0.05, seed=3)
        assert graph.is_connected()
        assert graph.num_nodes == 40

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(30, 0.2, seed=5) == erdos_renyi(30, 0.2, seed=5)
        assert erdos_renyi(30, 0.2, seed=5) != erdos_renyi(30, 0.2, seed=6)

    def test_expander_is_regular_and_low_diameter(self):
        graph = random_regular_expander(64, degree=4, seed=1)
        assert graph.is_regular()
        assert graph.is_connected()
        assert weighted_diameter(graph) <= 10  # O(log n) for an expander

    def test_expander_parity_check(self):
        with pytest.raises(GraphError):
            random_regular_expander(9, degree=3)

    def test_random_geometric_connected(self):
        graph = random_geometric(30, 0.3, seed=2)
        assert graph.is_connected()

    def test_barabasi_albert(self):
        graph = barabasi_albert(50, 2, seed=1)
        assert graph.is_connected()
        assert graph.num_nodes == 50


class TestLatencyModels:
    def test_constant_latency(self):
        model = constant_latency(7)
        graph = assign_latencies(clique(4), model)
        assert graph.distinct_latencies() == [7]

    def test_constant_latency_validation(self):
        with pytest.raises(GraphError):
            constant_latency(0)

    def test_uniform_latency_range(self):
        graph = assign_latencies(clique(8), uniform_latency(2, 5), seed=1)
        assert all(2 <= e.latency <= 5 for e in graph.edges())

    def test_uniform_latency_validation(self):
        with pytest.raises(GraphError):
            uniform_latency(3, 2)

    def test_bimodal_latency_values(self):
        graph = assign_latencies(clique(10), bimodal_latency(fast=1, slow=50, slow_fraction=0.5), seed=1)
        assert set(graph.distinct_latencies()) <= {1, 50}
        assert len(graph.distinct_latencies()) == 2

    def test_bimodal_extremes(self):
        all_slow = assign_latencies(clique(5), bimodal_latency(1, 9, slow_fraction=1.0), seed=1)
        assert all_slow.distinct_latencies() == [9]
        all_fast = assign_latencies(clique(5), bimodal_latency(1, 9, slow_fraction=0.0), seed=1)
        assert all_fast.distinct_latencies() == [1]

    def test_geometric_latency_positive(self):
        graph = assign_latencies(clique(8), geometric_latency(mean=4.0), seed=2)
        assert all(e.latency >= 1 for e in graph.edges())

    def test_power_law_latency_capped(self):
        graph = assign_latencies(clique(8), power_law_latency(alpha=1.5, max_latency=100), seed=2)
        assert all(1 <= e.latency <= 100 for e in graph.edges())

    def test_assign_latencies_deterministic(self):
        base = clique(6)
        a = assign_latencies(base, uniform_latency(1, 100), seed=9)
        b = assign_latencies(base, uniform_latency(1, 100), seed=9)
        assert a == b

    def test_assign_latencies_preserves_topology(self):
        base = grid_graph(3, 3)
        weighted = assign_latencies(base, uniform_latency(1, 9), seed=0)
        assert weighted.num_edges == base.num_edges
        assert set(weighted.nodes()) == set(base.nodes())


class TestWeightedConvenience:
    def test_weighted_clique(self):
        graph = weighted_clique(6, seed=1)
        assert graph.num_edges == 15
        assert graph.max_latency() >= 1

    def test_weighted_expander(self):
        graph = weighted_expander(32, degree=4, seed=1)
        assert graph.is_connected()

    def test_weighted_grid(self):
        graph = weighted_grid(3, 3, seed=1)
        assert graph.num_nodes == 9

    def test_weighted_erdos_renyi(self):
        graph = weighted_erdos_renyi(20, 0.3, seed=1)
        assert graph.is_connected()


class TestCSRGenerators:
    """The direct-to-CSR builders and their small-n equality contract."""

    INDEXED_ARRAYS = ("indptr", "indices", "latencies", "slot_edge_id")

    @pytest.mark.parametrize(
        ("factory", "kwargs"),
        [
            (weighted_erdos_renyi, {"n": 60, "p": 0.12}),
            (weighted_barabasi_albert, {"n": 60, "m": 3}),
            (weighted_watts_strogatz, {"n": 60, "k": 6, "rewire": 0.2}),
            (weighted_configuration_model, {"n": 60, "gamma": 2.5, "min_degree": 2}),
            (weighted_kronecker, {"n": 48, "edge_factor": 4}),
        ],
    )
    def test_csr_flag_is_bit_identical_below_threshold(self, factory, kwargs):
        # Below CSR_AUTO_THRESHOLD, csr=True repackages the dict-path
        # realization: same graph AND the same CSR arrays slot for slot.
        dict_graph = factory(seed=7, csr=False, **kwargs)
        csr_graph = factory(seed=7, csr=True, **kwargs)
        assert isinstance(csr_graph, CSRGraph)
        assert csr_graph == dict_graph
        dict_idx, csr_idx = dict_graph.indexed(), csr_graph.indexed()
        for attr in self.INDEXED_ARRAYS:
            assert np.array_equal(getattr(dict_idx, attr), getattr(csr_idx, attr)), attr

    def test_edge_stream_assembly_matches_add_edge_order(self):
        # The stream assembler's stable argsort reproduces dict insertion
        # order exactly: building from the same (u, v, latency) sequence
        # via add_edge yields identical IndexedGraph arrays.
        rng = np.random.default_rng(11)
        n = 30
        pairs = {(int(a), int(b)) for a, b in rng.integers(0, n, size=(120, 2)) if a != b}
        u = np.asarray([min(a, b) for a, b in sorted(pairs)], dtype=np.int64)
        v = np.asarray([max(a, b) for a, b in sorted(pairs)], dtype=np.int64)
        # Canonicalizing may create duplicates ((2,5) from both (2,5),(5,2)).
        seen = set()
        keep = []
        for i, (a, b) in enumerate(zip(u.tolist(), v.tolist())):
            if (a, b) not in seen:
                seen.add((a, b))
                keep.append(i)
        u, v = u[keep], v[keep]
        lat = rng.integers(1, 17, size=len(u), dtype=np.int64)
        streamed = _csr_from_edge_stream(n, u, v, lat)
        reference = WeightedGraph()
        for node in range(n):
            reference.add_node(node)
        for a, b, w in zip(u.tolist(), v.tolist(), lat.tolist()):
            reference.add_edge(a, b, w)
        assert streamed == reference
        ref_idx, csr_idx = reference.indexed(), streamed.indexed()
        for attr in self.INDEXED_ARRAYS:
            assert np.array_equal(getattr(ref_idx, attr), getattr(csr_idx, attr)), attr

    def test_erdos_renyi_csr_realization_is_sane(self):
        n = 4000
        graph = erdos_renyi_csr(n, 8.0 / n, seed=3)
        assert graph.num_nodes == n
        assert graph.is_connected()
        # Edge count is near the binomial mean (backbone adds a few).
        assert 0.8 * 4 * n <= graph.num_edges <= 1.3 * 4 * n
        idx = graph.indexed()
        assert not np.any(idx.indices == np.repeat(np.arange(n), np.diff(idx.indptr)))
        assert idx.latencies.min() >= 1 and idx.latencies.max() <= 16
        again = erdos_renyi_csr(n, 8.0 / n, seed=3)
        assert np.array_equal(idx.indices, again.indexed().indices)

    def test_erdos_renyi_csr_without_backbone_can_disconnect(self):
        graph = erdos_renyi_csr(400, 0.001, seed=1, ensure_connected=False)
        assert not graph.is_connected()

    def test_barabasi_albert_csr_realization_is_sane(self):
        n, m = 3000, 2
        graph = barabasi_albert_csr(n, m=m, seed=5)
        assert graph.num_nodes == n
        assert graph.num_edges == m * (n - m)
        assert graph.is_connected()
        # Preferential attachment produces hubs far above the mean degree.
        assert graph.max_degree() > 10 * (2 * graph.num_edges) / n

    def test_csr_builders_honour_explicit_latency_model(self):
        graph = erdos_renyi_csr(200, 0.05, model=constant_latency(3), seed=2)
        idx = graph.indexed()
        assert np.all(idx.latencies == 3)

    def test_csr_builders_validate_arguments(self):
        with pytest.raises(GraphError):
            erdos_renyi_csr(0, 0.5)
        with pytest.raises(GraphError):
            erdos_renyi_csr(10, 1.5)
        with pytest.raises(GraphError):
            barabasi_albert_csr(3, m=3)

    def test_erdos_renyi_csr_dense_p_regression(self):
        # Dense p regression: at p=0.98 rejection sampling of *present*
        # edges collapses into a coupon-collector stall; the builder must
        # sample the sparse complement instead and land on (almost) the
        # full clique without exhausting its attempt budget.
        n = 64
        total = n * (n - 1) // 2
        graph = erdos_renyi_csr(n, 0.98, seed=9)
        assert graph.num_nodes == n
        assert graph.is_connected()
        assert graph.num_edges >= 0.94 * total
        assert graph.num_edges <= total
        # p=1 is the degenerate corner of the same path: exactly the clique.
        assert erdos_renyi_csr(n, 1.0, seed=9).num_edges == total

    def test_barabasi_albert_m_zero_message(self):
        # m=0 silently built an edgeless graph before the guard; both
        # builders now reject it with the same pinned message.
        message = "barabasi-albert attachment count m must be >= 1 (m=0 builds an edgeless graph)"
        with pytest.raises(GraphError) as dict_err:
            barabasi_albert(10, 0)
        assert str(dict_err.value) == message
        with pytest.raises(GraphError) as csr_err:
            barabasi_albert_csr(10, m=0)
        assert str(csr_err.value) == message


class TestNewFamilyRealizations:
    """Sanity of the Watts–Strogatz / configuration-model / Kronecker builders."""

    def test_watts_strogatz_realization_is_sane(self):
        n, k = 2000, 6
        graph = watts_strogatz_csr(n, k=k, rewire=0.1, seed=3)
        assert graph.num_nodes == n
        assert graph.is_connected()
        # Rewiring keeps the edge volume near the lattice's n*k/2 (the
        # re-added ring backbone can add a few, dedup can drop a few).
        assert 0.9 * n * k / 2 <= graph.num_edges <= 1.15 * n * k / 2
        again = watts_strogatz_csr(n, k=k, rewire=0.1, seed=3)
        assert np.array_equal(graph.indexed().indices, again.indexed().indices)
        # The dict-path builder realizes the same family contract.
        small = watts_strogatz(40, k=4, rewire=0.3, seed=1)
        assert small.num_nodes == 40 and small.is_connected()

    def test_configuration_model_realization_is_sane(self):
        n = 3000
        graph = configuration_model_csr(n, gamma=2.5, min_degree=2, seed=4)
        assert graph.num_nodes == n
        assert graph.is_connected()
        mean_degree = 2 * graph.num_edges / n
        # Power-law stub matching produces hubs far above the mean degree.
        assert graph.max_degree() > 5 * mean_degree
        again = configuration_model_csr(n, gamma=2.5, min_degree=2, seed=4)
        assert np.array_equal(graph.indexed().indices, again.indexed().indices)
        small = configuration_model(40, gamma=2.2, min_degree=2, seed=1)
        assert small.num_nodes == 40 and small.is_connected()

    def test_kronecker_realization_is_sane(self):
        n, edge_factor = 2048, 8
        graph = kronecker_csr(n, edge_factor=edge_factor, seed=5)
        assert graph.num_nodes == n
        assert graph.is_connected()
        # The R-MAT batches stop once the edge_factor*n target is reached
        # (the last batch may overshoot, and the backbone tops it off), so
        # the realized volume sits near the target.
        assert 2 * n <= graph.num_edges <= 2 * edge_factor * n
        # Skewed initiator quadrants concentrate edges on low ids: hubs.
        mean_degree = 2 * graph.num_edges / n
        assert graph.max_degree() > 5 * mean_degree
        again = kronecker_csr(n, edge_factor=edge_factor, seed=5)
        assert np.array_equal(graph.indexed().indices, again.indexed().indices)
        small = kronecker(48, edge_factor=4, seed=1)
        assert small.num_nodes == 48 and small.is_connected()

    def test_new_family_validators_name_the_parameter(self):
        with pytest.raises(GraphError, match="lattice degree k"):
            watts_strogatz(20, k=3)
        with pytest.raises(GraphError, match="rewire probability"):
            watts_strogatz(20, k=4, rewire=1.5)
        with pytest.raises(GraphError, match="gamma"):
            configuration_model(20, gamma=1.0)
        with pytest.raises(GraphError, match="min_degree"):
            configuration_model_csr(20, min_degree=0)
        with pytest.raises(GraphError, match="edge_factor"):
            kronecker(20, edge_factor=0)
        with pytest.raises(GraphError, match="initiator probab"):
            kronecker_csr(20, a=1.2)
