"""Unit tests for repro.graphs.generators."""

from __future__ import annotations

import pytest

from repro.graphs import (
    GraphError,
    assign_latencies,
    barabasi_albert,
    bimodal_latency,
    binary_tree,
    clique,
    constant_latency,
    cycle_graph,
    dumbbell,
    erdos_renyi,
    geometric_latency,
    grid_graph,
    layered_ring,
    path_graph,
    power_law_latency,
    random_geometric,
    random_regular_expander,
    star,
    two_cluster_slow_bridge,
    uniform_latency,
    weighted_clique,
    weighted_erdos_renyi,
    weighted_expander,
    weighted_grid,
    weighted_diameter,
)


class TestBasicTopologies:
    def test_clique(self):
        graph = clique(5)
        assert graph.num_edges == 10
        assert graph.is_regular()

    def test_clique_requires_positive_n(self):
        with pytest.raises(GraphError):
            clique(0)

    def test_star(self):
        graph = star(6)
        assert graph.degree(0) == 5
        assert graph.max_degree() == 5
        assert graph.num_edges == 5

    def test_path_and_cycle(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 4 * 2
        assert graph.is_connected()

    def test_binary_tree(self):
        graph = binary_tree(3)
        assert graph.num_nodes == 15
        assert graph.num_edges == 14
        assert graph.is_connected()

    def test_dumbbell(self):
        graph = dumbbell(4, bridge_latency=8, bridge_length=3)
        assert graph.is_connected()
        assert graph.max_latency() == 8

    def test_two_cluster_slow_bridge(self):
        graph = two_cluster_slow_bridge(4, slow_latency=32, bridges=2)
        assert graph.num_nodes == 8
        assert graph.is_connected()
        assert graph.max_latency() == 32
        with pytest.raises(GraphError):
            two_cluster_slow_bridge(4, bridges=5)

    def test_layered_ring(self):
        graph = layered_ring(4, 3, inter_latency=5)
        assert graph.num_nodes == 12
        assert graph.is_connected()
        assert graph.max_latency() == 5
        with pytest.raises(GraphError):
            layered_ring(2, 3)


class TestRandomTopologies:
    def test_erdos_renyi_connected(self):
        graph = erdos_renyi(40, 0.05, seed=3)
        assert graph.is_connected()
        assert graph.num_nodes == 40

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(30, 0.2, seed=5) == erdos_renyi(30, 0.2, seed=5)
        assert erdos_renyi(30, 0.2, seed=5) != erdos_renyi(30, 0.2, seed=6)

    def test_expander_is_regular_and_low_diameter(self):
        graph = random_regular_expander(64, degree=4, seed=1)
        assert graph.is_regular()
        assert graph.is_connected()
        assert weighted_diameter(graph) <= 10  # O(log n) for an expander

    def test_expander_parity_check(self):
        with pytest.raises(GraphError):
            random_regular_expander(9, degree=3)

    def test_random_geometric_connected(self):
        graph = random_geometric(30, 0.3, seed=2)
        assert graph.is_connected()

    def test_barabasi_albert(self):
        graph = barabasi_albert(50, 2, seed=1)
        assert graph.is_connected()
        assert graph.num_nodes == 50


class TestLatencyModels:
    def test_constant_latency(self):
        model = constant_latency(7)
        graph = assign_latencies(clique(4), model)
        assert graph.distinct_latencies() == [7]

    def test_constant_latency_validation(self):
        with pytest.raises(GraphError):
            constant_latency(0)

    def test_uniform_latency_range(self):
        graph = assign_latencies(clique(8), uniform_latency(2, 5), seed=1)
        assert all(2 <= e.latency <= 5 for e in graph.edges())

    def test_uniform_latency_validation(self):
        with pytest.raises(GraphError):
            uniform_latency(3, 2)

    def test_bimodal_latency_values(self):
        graph = assign_latencies(clique(10), bimodal_latency(fast=1, slow=50, slow_fraction=0.5), seed=1)
        assert set(graph.distinct_latencies()) <= {1, 50}
        assert len(graph.distinct_latencies()) == 2

    def test_bimodal_extremes(self):
        all_slow = assign_latencies(clique(5), bimodal_latency(1, 9, slow_fraction=1.0), seed=1)
        assert all_slow.distinct_latencies() == [9]
        all_fast = assign_latencies(clique(5), bimodal_latency(1, 9, slow_fraction=0.0), seed=1)
        assert all_fast.distinct_latencies() == [1]

    def test_geometric_latency_positive(self):
        graph = assign_latencies(clique(8), geometric_latency(mean=4.0), seed=2)
        assert all(e.latency >= 1 for e in graph.edges())

    def test_power_law_latency_capped(self):
        graph = assign_latencies(clique(8), power_law_latency(alpha=1.5, max_latency=100), seed=2)
        assert all(1 <= e.latency <= 100 for e in graph.edges())

    def test_assign_latencies_deterministic(self):
        base = clique(6)
        a = assign_latencies(base, uniform_latency(1, 100), seed=9)
        b = assign_latencies(base, uniform_latency(1, 100), seed=9)
        assert a == b

    def test_assign_latencies_preserves_topology(self):
        base = grid_graph(3, 3)
        weighted = assign_latencies(base, uniform_latency(1, 9), seed=0)
        assert weighted.num_edges == base.num_edges
        assert set(weighted.nodes()) == set(base.nodes())


class TestWeightedConvenience:
    def test_weighted_clique(self):
        graph = weighted_clique(6, seed=1)
        assert graph.num_edges == 15
        assert graph.max_latency() >= 1

    def test_weighted_expander(self):
        graph = weighted_expander(32, degree=4, seed=1)
        assert graph.is_connected()

    def test_weighted_grid(self):
        graph = weighted_grid(3, 3, seed=1)
        assert graph.num_nodes == 9

    def test_weighted_erdos_renyi(self):
        graph = weighted_erdos_renyi(20, 0.3, seed=1)
        assert graph.is_connected()
