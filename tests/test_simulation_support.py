"""Unit tests for simulation support modules: rng, messages, metrics, tracing."""

from __future__ import annotations

import pytest

from repro.graphs import clique
from repro.simulation import (
    EventTrace,
    KnowledgeState,
    Rumor,
    SimulationMetrics,
    derive_seed,
    make_rng,
    spawn_rngs,
)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "phase", 3) == derive_seed(42, "phase", 3)

    def test_derive_seed_sensitive_to_labels(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(42, 1) != derive_seed(42, 2)
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_handles_tuples_and_objects(self):
        assert derive_seed(0, (1, "x")) == derive_seed(0, (1, "x"))
        assert derive_seed(0, frozenset({1})) == derive_seed(0, frozenset({1}))

    def test_make_rng_reproducible_streams(self):
        a = make_rng(7, "alice")
        b = make_rng(7, "alice")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_make_rng_independent_streams(self):
        a = make_rng(7, "alice")
        b = make_rng(7, "bob")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_spawn_rngs(self):
        rngs = spawn_rngs(3, ["x", "y"])
        assert set(rngs) == {"x", "y"}
        assert rngs["x"].random() != rngs["y"].random()


class TestRumorsAndKnowledge:
    def test_rumor_equality_and_hash(self):
        assert Rumor(origin=1) == Rumor(origin=1)
        assert Rumor(origin=1) != Rumor(origin=2)
        assert len({Rumor(origin=1), Rumor(origin=1)}) == 1

    def test_knowledge_add_and_knows(self):
        state = KnowledgeState(node=0)
        rumor = Rumor(origin=5)
        assert state.add(rumor)
        assert not state.add(rumor)
        assert state.knows(rumor)
        assert state.knows_origin(5)
        assert not state.knows_origin(6)

    def test_knowledge_merge_counts_new(self):
        state = KnowledgeState(node=0)
        state.add(Rumor(origin=1))
        new = state.merge({Rumor(origin=1), Rumor(origin=2), Rumor(origin=3)})
        assert new == 2
        assert state.origins() == {1, 2, 3}


class TestMetrics:
    def test_record_and_flatten(self):
        metrics = SimulationMetrics()
        metrics.record_activation(0, 1)
        metrics.record_activation(1, 0)
        metrics.record_exchange_completed()
        metrics.record_deliveries(3)
        metrics.rounds = 4
        assert metrics.activations == 2
        assert metrics.edge_activations[tuple(sorted(("0", "1")))] == 2
        assert metrics.messages == 2
        assert metrics.rumor_deliveries == 3
        assert metrics.total_time == 4
        assert metrics.as_dict()["activations"] == 2

    def test_charge_and_total_time(self):
        metrics = SimulationMetrics()
        metrics.rounds = 10
        metrics.charge(5.5)
        assert metrics.total_time == 15.5
        metrics.completion_time = 12.0
        assert metrics.total_time == 12.0

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulationMetrics().charge(-1)

    def test_merge(self):
        a = SimulationMetrics()
        a.rounds = 3
        a.record_activation(0, 1)
        b = SimulationMetrics()
        b.rounds = 4
        b.record_activation(1, 2)
        b.charge(2.0)
        a.merge(b)
        assert a.rounds == 7
        assert a.activations == 2
        assert a.charged_time == 2.0

    def test_most_activated_edges(self):
        metrics = SimulationMetrics()
        for _ in range(3):
            metrics.record_activation(0, 1)
        metrics.record_activation(2, 3)
        top = metrics.most_activated_edges(1)
        assert top[0][1] == 3


class TestTrace:
    def test_record_and_filter(self):
        trace = EventTrace()
        trace.record(1, "initiate", 0, 1, latency=3)
        trace.record(4, "complete", 0, 1)
        assert len(trace) == 2
        assert len(trace.initiations()) == 1
        assert len(trace.completions()) == 1
        assert trace.initiations()[0].detail("latency") == 3
        assert trace.initiations()[0].detail("missing", "default") == "default"
        assert trace.activations_of(0)[0].v == 1

    def test_max_events_drops_overflow(self):
        trace = EventTrace(max_events=2)
        for index in range(5):
            trace.record(index, "initiate", 0, 1)
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_iteration(self):
        trace = EventTrace()
        trace.record(1, "initiate", 0, 1)
        assert [event.kind for event in trace] == ["initiate"]
