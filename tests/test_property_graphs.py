"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Cut,
    WeightedGraph,
    assign_latencies,
    baswana_sen_spanner,
    clique,
    cut_edges,
    dijkstra,
    erdos_renyi,
    spanner_stretch,
    uniform_latency,
    weighted_diameter,
)

# Strategy: a connected random graph with random latencies, sized for speed.
graph_params = st.tuples(
    st.integers(min_value=4, max_value=14),      # n
    st.floats(min_value=0.15, max_value=0.7),    # edge probability
    st.integers(min_value=1, max_value=64),      # max latency
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build_graph(params) -> WeightedGraph:
    n, p, max_latency, seed = params
    base = erdos_renyi(n, p, seed=seed)
    return assign_latencies(base, uniform_latency(1, max_latency), seed=seed)


class TestGraphInvariants:
    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma(self, params):
        graph = build_graph(params)
        assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_latency_subgraph_monotone(self, params):
        graph = build_graph(params)
        lmax = graph.max_latency()
        smaller = graph.latency_subgraph(max(1, lmax // 2))
        larger = graph.latency_subgraph(lmax)
        assert smaller.num_edges <= larger.num_edges
        assert larger.num_edges == graph.num_edges

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_copy_equality(self, params):
        graph = build_graph(params)
        assert graph.copy() == graph

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_dijkstra_triangle_inequality(self, params):
        graph = build_graph(params)
        nodes = graph.nodes()
        source = nodes[0]
        dist = dijkstra(graph, source)
        # Distances never exceed any single-edge relaxation.
        for edge in graph.edges():
            if edge.u in dist and edge.v in dist:
                assert dist[edge.v] <= dist[edge.u] + edge.latency + 1e-9
                assert dist[edge.u] <= dist[edge.v] + edge.latency + 1e-9

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_diameter_bounds_distances(self, params):
        graph = build_graph(params)
        diameter = weighted_diameter(graph)
        dist = dijkstra(graph, graph.nodes()[0])
        assert max(dist.values()) <= diameter + 1e-9

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_cut_edges_complementarity(self, params):
        graph = build_graph(params)
        nodes = graph.nodes()
        side = nodes[: max(1, len(nodes) // 3)]
        cut = Cut.of(side)
        complement = Cut.of(set(nodes) - set(side))
        assert {frozenset((e.u, e.v)) for e in cut_edges(graph, cut)} == {
            frozenset((e.u, e.v)) for e in cut_edges(graph, complement)
        }


class TestSpannerProperties:
    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_spanner_stretch_and_sparsity(self, params):
        graph = build_graph(params)
        spanner = baswana_sen_spanner(graph, seed=params[3])
        # Stretch within the guarantee.
        assert spanner_stretch(graph, spanner.graph) <= spanner.guaranteed_stretch() + 1e-9
        # Never more edges than the original graph.
        assert spanner.num_edges <= graph.num_edges
        # All nodes retained and connectivity preserved.
        assert set(spanner.graph.nodes()) == set(graph.nodes())
        assert spanner.graph.is_connected()

    @given(st.integers(min_value=6, max_value=20), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_clique_spanner_sparser_than_clique(self, n, seed):
        graph = clique(n)
        spanner = baswana_sen_spanner(graph, seed=seed)
        assert spanner.num_edges <= graph.num_edges
        assert spanner.graph.is_connected()
