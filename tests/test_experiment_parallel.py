"""Tests for the parallel sweep orchestrator (repro.analysis.experiment).

The headline regression: the same experiment run serially, on a worker
pool, and resumed from a checkpoint must produce bit-identical
``ResultTable`` rows (wall-clock diagnostics aside).  Also covers the
deterministic seed schedule, JSONL checkpoint/resume semantics, failure
capture, per-trial timeouts, and the process-wide sweep configuration.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.analysis import (
    Experiment,
    current_sweep_config,
    deterministic_rows,
    resolve_workers,
    sweep,
    sweep_config,
)
from repro.gossip import PushPullGossip, Task
from repro.graphs import weighted_erdos_renyi
from repro.simulation.rng import derive_seed


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False
    return True


needs_fork = pytest.mark.skipif(not _has_fork(), reason="requires the 'fork' start method")


# Module-level so the sweep is realistic: a true gossip simulation per shard.
def _gossip_trial(case, seed):
    graph = weighted_erdos_renyi(case["n"], 0.3, seed=seed)
    result = PushPullGossip(task=Task.ONE_TO_ALL).run(graph, source=graph.nodes()[0], seed=seed)
    return {
        "time": result.time,
        "rounds": float(result.rounds_simulated),
        "messages": float(result.metrics.messages),
    }


def _make_experiment(**overrides):
    parameters = dict(
        name="parallel-sweep-test",
        cases=sweep(n=[16, 24, 32]),
        trial=_gossip_trial,
        repetitions=3,
        base_seed=7,
    )
    parameters.update(overrides)
    return Experiment(**parameters)


class TestShardSchedule:
    def test_shards_are_deterministic_and_ordered(self):
        experiment = _make_experiment()
        shards = experiment.shards()
        assert [shard.key for shard in shards] == [(i, r) for i in range(3) for r in range(3)]
        assert shards == experiment.shards()

    def test_seeds_follow_the_documented_derivation(self):
        experiment = _make_experiment()
        for shard in experiment.shards():
            assert shard.seed == derive_seed(7, "parallel-sweep-test", shard.case_index, shard.rep_index)

    def test_seeds_are_distinct_and_name_dependent(self):
        seeds = {shard.seed for shard in _make_experiment().shards()}
        assert len(seeds) == 9
        renamed = {shard.seed for shard in _make_experiment(name="other-name").shards()}
        assert seeds.isdisjoint(renamed)

    def test_rejects_nonpositive_repetitions(self):
        with pytest.raises(ValueError):
            _make_experiment(repetitions=0).shards()


class TestResolveWorkers:
    def test_accepted_spellings(self):
        assert resolve_workers(None) == 0
        assert resolve_workers("serial") == 0
        assert resolve_workers("4") == 4
        assert resolve_workers(2) == 2
        assert resolve_workers("auto") >= 1

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_workers("many")
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestDeterminism:
    """Serial == parallel == resumed-from-checkpoint, bit for bit."""

    @needs_fork
    def test_serial_parallel_and_resumed_rows_are_identical(self, tmp_path):
        experiment = _make_experiment()
        serial = experiment.run(workers=1)
        parallel = experiment.run(workers=4)
        assert deterministic_rows(parallel) == deterministic_rows(serial)

        # Build a partial checkpoint (first 4 shards), then resume: only the
        # missing shards re-run, and the assembled rows are still identical.
        checkpoint = str(tmp_path / "sweep.jsonl")
        full = experiment.run(workers=2, checkpoint=checkpoint)
        assert deterministic_rows(full) == deterministic_rows(serial)
        lines = [line for line in open(checkpoint, encoding="utf-8").read().splitlines() if line]
        assert len(lines) == 9
        with open(checkpoint, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:4]) + "\n")

        ran = []

        def counting_trial(case, seed):
            ran.append(seed)
            return _gossip_trial(case, seed)

        resumed = _make_experiment(trial=counting_trial).run(
            workers=1, checkpoint=checkpoint, resume=True
        )
        assert len(ran) == 5  # only the shards missing from the checkpoint
        assert deterministic_rows(resumed) == deterministic_rows(serial)

    def test_rows_contain_mean_and_spread_columns(self):
        table = _make_experiment().run()
        row = table.rows[0]
        for key in ("time", "time_min", "time_max", "time_stdev", "messages_stdev", "wall_seconds"):
            assert key in row.values
        assert "wall_seconds_stdev" not in row.values  # wall-clock spread is noise
        assert row["time_min"] <= row["time"] <= row["time_max"]


class TestCheckpointing:
    def test_checkpoint_lines_are_wellformed_jsonl(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt.jsonl")
        experiment = _make_experiment(repetitions=1)
        experiment.run(checkpoint=checkpoint)
        records = [json.loads(line) for line in open(checkpoint, encoding="utf-8") if line.strip()]
        assert len(records) == 3
        for record in records:
            assert record["experiment"] == "parallel-sweep-test"
            assert record["status"] == "ok"
            assert record["seed"] == derive_seed(7, "parallel-sweep-test", record["case_index"], 0)
            assert "time" in record["measurement"]

    def test_resume_ignores_stale_and_malformed_records(self, tmp_path):
        checkpoint = tmp_path / "ckpt.jsonl"
        good = {
            "experiment": "parallel-sweep-test",
            "case_index": 0,
            "rep_index": 0,
            "seed": derive_seed(7, "parallel-sweep-test", 0, 0),
            "status": "ok",
            "measurement": {"time": 1.0},
            "error": None,
            "wall_seconds": 0.1,
        }
        stale_seed = dict(good, rep_index=1, seed=12345)  # wrong schedule
        other = dict(good, experiment="someone-else", rep_index=2)
        failed = dict(good, rep_index=2, status="error", error="boom", measurement=None)
        lines = [json.dumps(good), "{not json", json.dumps(stale_seed), json.dumps(other), json.dumps(failed)]
        checkpoint.write_text("\n".join(lines) + "\n", encoding="utf-8")

        ran = []

        def counting_trial(case, seed):
            ran.append(seed)
            return {"time": 1.0}

        experiment = _make_experiment(trial=counting_trial, cases=[{"n": 16}])
        experiment.run(checkpoint=str(checkpoint), resume=True)
        # Shards (0,1) and (0,2) re-ran (stale seed / failed); (0,0) was reused.
        assert len(ran) == 2

    def test_resume_without_checkpoint_is_rejected(self):
        with pytest.raises(ValueError, match="resume"):
            _make_experiment().run(resume=True)

    def test_without_resume_checkpoint_is_overwritten(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt.jsonl")
        experiment = _make_experiment(repetitions=1, cases=[{"n": 16}])
        experiment.run(checkpoint=checkpoint)
        experiment.run(checkpoint=checkpoint)
        lines = [line for line in open(checkpoint, encoding="utf-8").read().splitlines() if line]
        assert len(lines) == 1


class TestFailureCapture:
    def test_trial_exceptions_become_failures_not_crashes(self):
        def flaky_trial(case, seed):
            if case["n"] == 24:
                raise RuntimeError("deliberate failure")
            return {"time": float(case["n"])}

        table = _make_experiment(trial=flaky_trial, repetitions=2).run()
        rows = {row["n"]: row for row in table.rows}
        assert rows[24]["failures"] == 2
        assert "time" not in rows[24].values
        assert rows[16].get("failures") is None
        assert any("deliberate failure" in note for note in table.notes)

    @needs_fork
    def test_failures_are_deterministic_across_worker_counts(self):
        def flaky_trial(case, seed):
            if case["n"] == 24:
                raise RuntimeError("deliberate failure")
            return {"time": float(case["n"])}

        experiment = _make_experiment(trial=flaky_trial, repetitions=2)
        assert deterministic_rows(experiment.run(workers=1)) == deterministic_rows(experiment.run(workers=3))

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"), reason="needs POSIX signals")
    def test_per_trial_timeout_is_captured(self):
        def slow_trial(case, seed):
            if case["n"] == 24:
                time.sleep(5.0)
            return {"time": 1.0}

        table = _make_experiment(trial=slow_trial, repetitions=1).run(timeout=0.2)
        rows = {row["n"]: row for row in table.rows}
        assert rows[24]["failures"] == 1
        assert any("timeout" in note for note in table.notes)
        assert "time" in rows[16].values


class TestProgressAndConfig:
    def test_progress_callback_sees_every_shard(self):
        seen = []
        _make_experiment(repetitions=2).run(progress=lambda done, total, record: seen.append((done, total)))
        assert seen == [(i + 1, 6) for i in range(6)]

    def test_sweep_config_sets_and_restores_defaults(self, tmp_path):
        previous = current_sweep_config()
        with sweep_config(workers=1, checkpoint_dir=str(tmp_path)):
            experiment = _make_experiment(repetitions=1, cases=[{"n": 16}])
            experiment.run()
            assert (tmp_path / "parallel-sweep-test.jsonl").exists()
            assert resolve_workers(current_sweep_config().workers) == 1
        assert current_sweep_config() == previous
