#!/usr/bin/env python
"""Regenerate the committed golden-trace fixtures in this directory.

Usage (from the repository root)::

    PYTHONPATH=src python tests/golden/regen.py

Only run this deliberately — after a change that is *supposed* to alter the
seeded trajectories (new seed derivation, changed engine semantics) — and
review the fixture diffs before committing them.  See
:mod:`repro.simulation.golden` for how to add new algorithms or topologies.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.simulation.golden import write_golden_fixtures  # noqa: E402


def main() -> int:
    directory = os.path.dirname(os.path.abspath(__file__))
    for path in write_golden_fixtures(directory):
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
