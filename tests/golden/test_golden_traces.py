"""Golden-trace regression tests.

Each committed fixture under ``tests/golden/`` is the seeded trajectory of
one declarative algorithm on one topology (see
:mod:`repro.simulation.golden`).  These tests replay every fixture on the
reference engine *and* the fast bitset engine — per-round informed counts
included — and cross-check the end-to-end ``GossipAlgorithm.run`` results,
so serial replay, fast-engine replay, and the committed snapshot must all
agree bit-for-bit.  Regenerate deliberately with
``python tests/golden/regen.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.simulation.golden import (
    GOLDEN_SEED,
    build_golden_algorithm,
    build_golden_dynamics,
    build_golden_faults,
    build_golden_topology,
    capture_golden_trace,
    fixture_filename,
    golden_cases,
    golden_dynamic_cases,
    golden_fault_cases,
)

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))
CASES = golden_cases()
DYNAMIC_CASES = golden_dynamic_cases()
FAULT_CASES = golden_fault_cases()


def _load_fixture(algorithm: str, topology: str, dynamics: str = None, faults: str = None) -> dict:
    path = os.path.join(FIXTURE_DIR, fixture_filename(algorithm, topology, dynamics, faults))
    assert os.path.exists(path), (
        f"missing golden fixture {os.path.basename(path)}; run `python tests/golden/regen.py`"
    )
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_every_golden_case_has_a_committed_fixture():
    committed = {name for name in os.listdir(FIXTURE_DIR) if name.endswith(".json")}
    expected = {fixture_filename(algorithm, topology) for algorithm, topology in CASES}
    expected |= {
        fixture_filename(algorithm, topology, dynamics)
        for algorithm, topology, dynamics in DYNAMIC_CASES
    }
    expected |= {
        fixture_filename(algorithm, topology, None, faults)
        for algorithm, topology, faults in FAULT_CASES
    }
    assert committed == expected, (
        "fixture set is out of sync with repro.simulation.golden; "
        "run `python tests/golden/regen.py` (and delete stale files)"
    )


@pytest.mark.parametrize(("algorithm", "topology"), CASES)
def test_reference_engine_matches_fixture(algorithm, topology):
    fixture = _load_fixture(algorithm, topology)
    assert capture_golden_trace(algorithm, topology, backend="reference") == fixture


@pytest.mark.parametrize(("algorithm", "topology"), CASES)
def test_fast_engine_matches_fixture(algorithm, topology):
    fixture = _load_fixture(algorithm, topology)
    assert capture_golden_trace(algorithm, topology, backend="fast") == fixture


@pytest.mark.parametrize(("algorithm", "topology"), CASES)
def test_algorithm_run_matches_fixture_on_both_backends(algorithm, topology):
    """Guards drift between golden._policy_spec and the algorithms' own specs.

    ``GossipAlgorithm.run`` constructs its policy spec (selection rule, gate,
    rng label) internally; if that ever diverges from the replay table used
    to capture fixtures, the end-to-end run stops matching the snapshot.
    """
    fixture = _load_fixture(algorithm, topology)
    for backend in ("reference", "fast"):
        graph = build_golden_topology(topology)
        instance = build_golden_algorithm(algorithm)
        result = instance.run(graph, source=fixture["source"], seed=GOLDEN_SEED, engine=backend)
        assert result.complete
        assert result.rounds_simulated == fixture["rounds"], backend
        assert result.metrics.messages == fixture["messages"], backend
        assert result.metrics.activations == fixture["activations"], backend
        assert result.metrics.rumor_deliveries == fixture["rumor_deliveries"], backend


@pytest.mark.parametrize(("algorithm", "topology", "dynamics"), DYNAMIC_CASES)
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_churned_trace_matches_fixture_on_both_backends(algorithm, topology, dynamics, backend):
    """The churned anchors: per-round informed counts under topology dynamics.

    Replaying the committed schedule on either backend must reproduce the
    fixture bit-for-bit — including the per-round informed counts and the
    lost-exchange total — anchoring dynamics application order, in-flight
    cancellation, and the fast engine's mid-run CSR re-snapshots.
    """
    fixture = _load_fixture(algorithm, topology, dynamics)
    assert capture_golden_trace(algorithm, topology, backend=backend, dynamics=dynamics) == fixture


@pytest.mark.parametrize(("algorithm", "topology", "dynamics"), DYNAMIC_CASES)
def test_churned_algorithm_run_matches_fixture_on_both_backends(algorithm, topology, dynamics):
    """End-to-end ``run(dynamics=...)`` agrees with the stepped churned trace."""
    fixture = _load_fixture(algorithm, topology, dynamics)
    for backend in ("reference", "fast"):
        graph = build_golden_topology(topology)
        schedule = build_golden_dynamics(dynamics, graph)
        instance = build_golden_algorithm(algorithm)
        result = instance.run(
            graph, source=fixture["source"], seed=GOLDEN_SEED, engine=backend, dynamics=schedule
        )
        assert result.complete
        assert result.rounds_simulated == fixture["rounds"], backend
        assert result.metrics.messages == fixture["messages"], backend
        assert result.metrics.activations == fixture["activations"], backend
        assert result.metrics.lost_exchanges == fixture["lost_exchanges"], backend
        assert result.details["dynamics"] == str(schedule), backend


@pytest.mark.parametrize(("algorithm", "topology", "faults"), FAULT_CASES)
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_faulted_trace_matches_fixture_on_both_backends(algorithm, topology, faults, backend):
    """The faulted anchors: crash/edge faults compiled onto the event pipeline.

    Replaying the committed fault plan on either backend must reproduce the
    fixture bit-for-bit — per-round informed counts among all nodes and the
    suppressed-exchange total — anchoring suppression accounting and the
    survivor-restricted completion predicates.
    """
    fixture = _load_fixture(algorithm, topology, faults=faults)
    assert capture_golden_trace(algorithm, topology, backend=backend, faults=faults) == fixture


@pytest.mark.parametrize(("algorithm", "topology", "faults"), FAULT_CASES)
def test_faulted_algorithm_run_matches_fixture_on_both_backends(algorithm, topology, faults):
    """End-to-end ``run(faults=...)`` agrees with the stepped faulted trace."""
    fixture = _load_fixture(algorithm, topology, faults=faults)
    for backend in ("reference", "fast"):
        graph = build_golden_topology(topology)
        plan = build_golden_faults(faults, graph)
        instance = build_golden_algorithm(algorithm)
        result = instance.run(
            graph, source=fixture["source"], seed=GOLDEN_SEED, engine=backend, faults=plan
        )
        assert result.complete
        assert result.rounds_simulated == fixture["rounds"], backend
        assert result.metrics.messages == fixture["messages"], backend
        assert result.metrics.activations == fixture["activations"], backend
        assert result.metrics.suppressed_exchanges == fixture["suppressed_exchanges"], backend
        assert result.details["suppressed_exchanges"] == fixture["suppressed_exchanges"], backend
