"""Parity and selection tests for the pluggable simulation backends.

The fast bitset engine must reproduce the reference engine's seeded runs
bit-for-bit: same completion round, same exchange/message counts, same
per-edge activation counters.  These tests sweep the declarative algorithm
family (push, pull, push-pull, flooding) across ring, star, and Erdős–Rényi
topologies — the acceptance matrix of the backend refactor — plus the
backend-selection contract and the underflow guard.
"""

from __future__ import annotations

import pytest

from repro.gossip import (
    FloodingGossip,
    PatternBroadcast,
    PullGossip,
    PushGossip,
    PushPullGossip,
    Task,
)
from repro.graphs import cycle_graph, star, uniform_latency, weighted_erdos_renyi
from repro.simulation import (
    EngineProtocol,
    EngineSelectionError,
    FastEngine,
    GossipEngine,
    PolicyCapability,
    RoundPolicySpec,
    available_backends,
    create_engine,
    resolve_backend,
    set_default_backend,
)
from repro.simulation.rng import make_rng


def _ring():
    return cycle_graph(24)


def _star():
    return star(16)


def _erdos_renyi():
    return weighted_erdos_renyi(30, 0.2, uniform_latency(1, 8), seed=3)


TOPOLOGIES = [_ring, _star, _erdos_renyi]

ALGORITHMS = [
    lambda: PushPullGossip(),
    lambda: PushGossip(),
    lambda: PullGossip(),
    lambda: FloodingGossip(),
    lambda: PushPullGossip(task=Task.ALL_TO_ALL),
    lambda: FloodingGossip(task=Task.ALL_TO_ALL),
]


@pytest.mark.parametrize("make_graph", TOPOLOGIES, ids=["ring", "star", "erdos-renyi"])
@pytest.mark.parametrize(
    "make_algorithm",
    ALGORITHMS,
    ids=["push-pull", "push", "pull", "flooding", "push-pull-a2a", "flooding-a2a"],
)
@pytest.mark.parametrize("seed", [0, 11])
def test_backends_produce_identical_runs(make_graph, make_algorithm, seed):
    graph = make_graph()
    reference = make_algorithm().run(graph, seed=seed, engine="reference")
    fast = make_algorithm().run(graph, seed=seed, engine="fast")
    assert reference.details["engine"] == "reference"
    assert fast.details["engine"] == "fast"
    assert fast.time == reference.time
    assert fast.rounds_simulated == reference.rounds_simulated
    ref_metrics, fast_metrics = reference.metrics, fast.metrics
    assert fast_metrics.completion_time == ref_metrics.completion_time
    assert fast_metrics.activations == ref_metrics.activations
    assert fast_metrics.messages == ref_metrics.messages
    assert fast_metrics.rumor_deliveries == ref_metrics.rumor_deliveries
    assert fast_metrics.payload_rumors_sent == ref_metrics.payload_rumors_sent
    assert fast_metrics.max_payload_size == ref_metrics.max_payload_size
    assert fast_metrics.edge_activations == ref_metrics.edge_activations


def test_auto_resolves_by_capability():
    graph = _ring()
    declarative = PushPullGossip().run(graph, seed=1, engine="auto")
    assert declarative.details["engine"] == "fast"
    assert resolve_backend("auto", capability=PolicyCapability.ARBITRARY_CALLBACK) == "reference"
    assert resolve_backend("auto", capability=PolicyCapability.UNIFORM_RANDOM) == "fast"
    # A requested trace forces the reference backend even for declarative policies.
    assert resolve_backend("auto", capability=PolicyCapability.UNIFORM_RANDOM, trace=object()) == "reference"


def test_set_default_backend_steers_auto():
    graph = _ring()
    previous = set_default_backend("reference")
    try:
        assert previous == "auto"
        # "auto" now resolves to the reference backend even for declarative
        # algorithms; explicit engine= arguments are unaffected.
        assert PushPullGossip().run(graph, seed=1).details["engine"] == "reference"
        assert PushPullGossip().run(graph, seed=1, engine="fast").details["engine"] == "fast"
    finally:
        set_default_backend(previous)
    assert PushPullGossip().run(graph, seed=1).details["engine"] == "fast"
    with pytest.raises(EngineSelectionError):
        set_default_backend("warp-drive")


def test_fast_rejected_for_callback_algorithms():
    graph = _ring()
    with pytest.raises(EngineSelectionError):
        PatternBroadcast(diameter=12).run(graph, seed=0, engine="fast")
    with pytest.raises(EngineSelectionError):
        resolve_backend("fast", capability=PolicyCapability.ARBITRARY_CALLBACK)
    with pytest.raises(EngineSelectionError):
        resolve_backend("warp-drive")


def test_registry_lists_both_backends():
    assert available_backends() == ["batch", "edge", "fast", "reference"]
    for backend in ("fast", "reference"):
        engine, name = create_engine(_ring(), backend, capability=PolicyCapability.UNIFORM_RANDOM)
        assert name == backend
        assert isinstance(engine, EngineProtocol)


def test_fast_engine_rejects_arbitrary_callbacks():
    engine = FastEngine(_ring())
    with pytest.raises(TypeError):
        engine.step(lambda view: None)


def test_fast_engine_queries_match_reference_incrementally():
    graph = _star()
    spec = lambda: RoundPolicySpec(select="uniform-random", gate="all", rng=make_rng(5, "query-parity"))
    reference, fast = GossipEngine(graph), FastEngine(graph)
    rumor_ref = reference.seed_rumor(0, payload="r")
    rumor_fast = fast.seed_rumor(0, payload="r")
    assert rumor_ref == rumor_fast
    ref_policy, fast_policy = spec(), spec()
    for _ in range(4):
        reference.step(ref_policy)
        fast.step(fast_policy)
        assert fast.informed_nodes(rumor_fast) == reference.informed_nodes(rumor_ref)
        assert fast.dissemination_complete(rumor_fast) == reference.dissemination_complete(rumor_ref)
        assert fast.all_to_all_complete() == reference.all_to_all_complete()
        assert fast.local_broadcast_complete() == reference.local_broadcast_complete()


def test_blocking_mode_parity():
    graph = _erdos_renyi()
    results = []
    for engine_cls in (GossipEngine, FastEngine):
        engine = engine_cls(graph, blocking=True)
        rumor = engine.seed_rumor(graph.nodes()[0])
        policy = RoundPolicySpec(select="uniform-random", gate="all", rng=make_rng(7, "blocking"))
        metrics = engine.run(
            policy, stop_condition=lambda eng: eng.dissemination_complete(rumor), max_rounds=10_000
        )
        results.append((metrics.rounds, metrics.activations, metrics.messages))
    assert results[0] == results[1]


def test_fast_engine_rumors_known_matches_reference():
    graph = _ring()
    reference, fast = GossipEngine(graph), FastEngine(graph)
    for engine in (reference, fast):
        engine.seed_all_rumors()
    policy = lambda: RoundPolicySpec(select="round-robin")
    for _ in range(3):
        reference.step(policy())
    fast_policy = policy()
    for _ in range(3):
        fast.step(fast_policy)
    for node in graph.nodes():
        assert fast.rumors_known(node) == reference.knowledge[node].rumors


@pytest.mark.parametrize("engine_cls", [GossipEngine, FastEngine])
def test_outstanding_underflow_raises(engine_cls):
    graph = cycle_graph(4)
    engine = engine_cls(graph)
    engine.seed_rumor(0)
    engine.initiate_exchange(0, 1)
    # Corrupt the bookkeeping the way a blocking-mode bug would: the
    # completion must now raise instead of being masked by a clamp to 0.
    if engine_cls is GossipEngine:
        engine._outstanding[0] = 0
    else:
        engine._outstanding[graph.indexed().index_of(0)] = 0
    with pytest.raises(RuntimeError, match="underflow"):
        for _ in range(3):
            engine.step(RoundPolicySpec(select="round-robin", gate="informed-only"))


def test_round_robin_spec_needs_no_rng_and_validates():
    RoundPolicySpec(select="round-robin")
    with pytest.raises(ValueError):
        RoundPolicySpec(select="uniform-random")  # missing rng
    with pytest.raises(ValueError):
        RoundPolicySpec(select="best-neighbor", rng=make_rng(0))
    with pytest.raises(ValueError):
        RoundPolicySpec(select="round-robin", gate="everyone")
