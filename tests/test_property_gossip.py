"""Property-based tests (hypothesis) for the gossip algorithms and the game."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.gossip import (
    PatternBroadcast,
    PushPullGossip,
    Task,
    dtg_local_broadcast,
    pattern_schedule,
    run_push_pull,
)
from repro.graphs import WeightedGraph, assign_latencies, erdos_renyi, uniform_latency, weighted_diameter
from repro.guessing_game import (
    AdaptiveFreshStrategy,
    GuessingGame,
    RandomGuessingStrategy,
    play_game,
    random_p_predicate,
    singleton_predicate,
)

graph_params = st.tuples(
    st.integers(min_value=4, max_value=12),      # n
    st.floats(min_value=0.25, max_value=0.8),    # edge probability
    st.integers(min_value=1, max_value=16),      # max latency
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build_graph(params) -> WeightedGraph:
    n, p, max_latency, seed = params
    base = erdos_renyi(n, p, seed=seed)
    return assign_latencies(base, uniform_latency(1, max_latency), seed=seed)


class TestGossipProperties:
    @given(graph_params)
    @settings(max_examples=25, deadline=None)
    def test_push_pull_always_completes_and_respects_diameter(self, params):
        graph = build_graph(params)
        result = run_push_pull(graph, source=graph.nodes()[0], seed=params[3])
        assert result.complete
        # Completion can never beat the eccentricity of the source (a lower bound).
        from repro.graphs import dijkstra

        eccentricity = max(dijkstra(graph, graph.nodes()[0]).values())
        assert result.time >= eccentricity

    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_dtg_always_solves_local_broadcast(self, params):
        graph = build_graph(params)
        result = dtg_local_broadcast(graph)
        for node in graph.nodes():
            origins = {rumor.origin for rumor in result.knowledge[node]}
            assert set(graph.neighbors(node)) <= origins

    @given(graph_params)
    @settings(max_examples=12, deadline=None)
    def test_pattern_broadcast_completes_with_known_diameter(self, params):
        graph = build_graph(params)
        diameter = int(weighted_diameter(graph))
        result = PatternBroadcast(diameter=max(1, diameter)).run(graph)
        assert result.complete

    @given(st.integers(min_value=0, max_value=8))
    @settings(max_examples=9, deadline=None)
    def test_pattern_schedule_is_palindrome_with_single_peak(self, exponent):
        k = 2 ** exponent
        schedule = pattern_schedule(k)
        assert schedule == list(reversed(schedule))
        assert max(schedule) == k
        assert schedule.count(k) == 1


class TestGuessingGameProperties:
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_adaptive_strategy_always_wins_singleton(self, m, seed):
        playout = play_game(m, singleton_predicate(), AdaptiveFreshStrategy(), seed=seed)
        assert 1 <= playout.rounds <= m * m  # can never need more guesses than pairs

    @given(
        st.integers(min_value=3, max_value=16),
        st.floats(min_value=0.05, max_value=0.6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_strategy_always_wins_random_p(self, m, p, seed):
        playout = play_game(m, random_p_predicate(p), RandomGuessingStrategy(), seed=seed, max_rounds=100_000)
        assert playout.rounds >= 1

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_target_set_shrinks_monotonically(self, m, seed):
        import random as _random

        rng = _random.Random(seed)
        target = random_p_predicate(0.3)(m, rng)
        game = GuessingGame(m, target)
        sizes = [len(game.target)]
        while not game.finished and game.round < 200:
            guesses = {(rng.randrange(m), rng.randrange(m)) for _ in range(m)}
            game.submit_guesses(guesses)
            sizes.append(len(game.target))
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
