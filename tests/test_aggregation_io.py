"""Unit tests for gossip aggregation and graph serialization."""

from __future__ import annotations

import pytest

from repro.gossip import gossip_aggregate
from repro.graphs import (
    GraphError,
    WeightedGraph,
    clique,
    from_edge_list,
    from_json,
    load_edge_list,
    load_json,
    path_graph,
    save_edge_list,
    save_json,
    to_edge_list,
    to_json,
    weighted_erdos_renyi,
)


class TestGossipAggregate:
    @pytest.mark.parametrize("aggregate,expected", [("min", 1.0), ("max", 8.0), ("sum", 36.0), ("mean", 4.5)])
    def test_builtin_aggregates_exact(self, aggregate, expected):
        graph = clique(8)
        inputs = {node: float(node + 1) for node in graph.nodes()}
        result = gossip_aggregate(graph, inputs, aggregate=aggregate, seed=1)
        assert result.exact
        assert result.consensus_value() == pytest.approx(expected)

    def test_custom_reducer(self):
        graph = weighted_erdos_renyi(12, 0.4, seed=2)
        inputs = {node: float(node) for node in graph.nodes()}
        result = gossip_aggregate(graph, inputs, aggregate=lambda values: max(values) - min(values), seed=2)
        assert result.consensus_value() == pytest.approx(11.0)

    def test_time_positive_and_bounded_by_push_pull(self):
        graph = path_graph(8)
        inputs = {node: 1.0 for node in graph.nodes()}
        result = gossip_aggregate(graph, inputs, aggregate="count", seed=3)
        assert result.time >= 7  # at least the diameter
        assert result.consensus_value() == 8

    def test_missing_inputs_rejected(self):
        graph = clique(4)
        with pytest.raises(GraphError):
            gossip_aggregate(graph, {0: 1.0}, aggregate="sum")

    def test_unknown_aggregate_rejected(self):
        graph = clique(4)
        inputs = {node: 1.0 for node in graph.nodes()}
        with pytest.raises(GraphError):
            gossip_aggregate(graph, inputs, aggregate="mode")

    def test_disconnected_graph_rejected(self):
        graph = WeightedGraph(range(4))
        graph.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            gossip_aggregate(graph, {n: 1.0 for n in graph.nodes()}, aggregate="sum")


class TestEdgeListSerialization:
    def test_round_trip(self, triangle):
        text = to_edge_list(triangle)
        back = from_edge_list(text)
        assert back == triangle

    def test_comments_and_default_latency(self):
        text = "# a comment\n0 1\n1 2 7\n"
        graph = from_edge_list(text)
        assert graph.latency(0, 1) == 1
        assert graph.latency(1, 2) == 7

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list("0 1 2 3 4\n")

    def test_string_nodes(self):
        graph = from_edge_list("a b 3\n", node_type=str)
        assert graph.latency("a", "b") == 3

    def test_file_round_trip(self, tmp_path, slow_bridge):
        path = tmp_path / "graph.edges"
        save_edge_list(slow_bridge, path)
        assert load_edge_list(path) == slow_bridge


class TestJsonSerialization:
    def test_round_trip_preserves_isolated_nodes(self):
        graph = WeightedGraph(range(5))
        graph.add_edge(0, 1, 3)
        back = from_json(to_json(graph))
        assert back == graph
        assert back.num_nodes == 5

    def test_invalid_json_rejected(self):
        with pytest.raises(GraphError):
            from_json("not json at all")
        with pytest.raises(GraphError):
            from_json('{"format": "something-else"}')

    def test_file_round_trip(self, tmp_path, small_weighted_er):
        path = tmp_path / "graph.json"
        save_json(small_weighted_er, path)
        assert load_json(path) == small_weighted_er


class TestPayloadMetrics:
    def test_one_to_all_push_pull_has_small_payloads(self):
        from repro.gossip import PushPullGossip, Task

        graph = clique(12)
        result = PushPullGossip(task=Task.ONE_TO_ALL).run(graph, source=0, seed=1)
        # Each message carries at most the single rumor (2 per exchange).
        assert result.metrics.max_payload_size <= 2
        assert result.metrics.payload_rumors_sent <= result.metrics.messages

    def test_all_to_all_payloads_grow_with_n(self):
        from repro.gossip import PushPullGossip, Task

        graph = clique(12)
        result = PushPullGossip(task=Task.ALL_TO_ALL).run(graph, seed=1)
        assert result.metrics.max_payload_size > 2
        assert result.metrics.max_payload_size <= 2 * graph.num_nodes
