"""Tests for the dynamic-topology subsystem.

Covers the event model and schedules (:mod:`repro.simulation.dynamics`),
the deterministic generators (:mod:`repro.graphs.dynamics`), and — most
importantly — the cross-backend contract: a seeded schedule produces
bit-identical per-round informed counts on ``engine="reference"`` and
``engine="fast"``, a no-op schedule reproduces the static run exactly, and
direct graph mutation mid-run is either safely resynchronized (edges,
appended nodes) or rejected loudly (node removal) instead of silently
serving a stale CSR snapshot.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip import FloodingGossip, PushPullGossip, SpannerBroadcast, Task
from repro.graphs import (
    markov_churn,
    path_graph,
    periodic_latency_drift,
    slow_bridge_flapping,
    two_cluster_slow_bridge,
    weighted_erdos_renyi,
)
from repro.graphs.weighted_graph import GraphError
from repro.simulation import (
    ComposedDynamics,
    PolicyCapability,
    RoundPolicySpec,
    ScheduleDynamics,
    TopologyEvent,
    apply_events,
    create_engine,
    make_rng,
)


def _bridge_graph():
    return two_cluster_slow_bridge(5, fast_latency=1, slow_latency=8, bridges=1)


def _er_graph():
    return weighted_erdos_renyi(24, 0.25, seed=7)


def _trace(graph, backend, schedule, policy_seed=11, select="uniform-random", max_rounds=5000):
    """Step one engine to completion; return (informed counts, metrics)."""
    engine, _ = create_engine(
        graph, backend, capability=PolicyCapability.UNIFORM_RANDOM, dynamics=schedule
    )
    rumor = engine.seed_rumor(graph.nodes()[0])
    rng = make_rng(policy_seed, "dyn-test") if select == "uniform-random" else None
    spec = RoundPolicySpec(select=select, rng=rng)
    counts = [len(engine.informed_nodes(rumor))]
    while not engine.dissemination_complete(rumor):
        assert engine.round < max_rounds, "run did not complete"
        engine.step(spec)
        counts.append(len(engine.informed_nodes(rumor)))
    return counts, engine.metrics


# ----------------------------------------------------------------------
# Event model and schedules
# ----------------------------------------------------------------------
class TestEventModel:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            TopologyEvent("teleport", 0)
        with pytest.raises(ValueError):
            TopologyEvent("remove-edge", 0)  # missing second endpoint
        with pytest.raises(ValueError):
            TopologyEvent("add-edge", 0, 1)  # missing latency
        with pytest.raises(ValueError):
            TopologyEvent("set-latency", 0, 1, latency=0)

    def test_forgiving_application(self):
        graph = path_graph(4)
        apply_events(
            graph,
            [
                TopologyEvent("remove-edge", 0, 3),  # absent: no-op
                TopologyEvent("remove-edge", 0, 1),
                TopologyEvent("remove-edge", 0, 1),  # already gone: no-op
                TopologyEvent("add-edge", 1, 2, latency=5),  # present: retune latency
                TopologyEvent("set-latency", 0, 1, latency=9),  # absent: no-op
            ],
        )
        assert not graph.has_edge(0, 1)
        assert graph.latency(1, 2) == 5

    def test_node_leave_and_join(self):
        graph = path_graph(4)
        apply_events(graph, [TopologyEvent("node-leave", 1)])
        assert graph.degree(1) == 0
        assert graph.has_node(1)
        apply_events(graph, [TopologyEvent("node-join", 1, edges=((0, 1), (2, 1)))])
        assert sorted(graph.neighbors(1)) == [0, 2]

    def test_schedule_validation_and_lookup(self):
        event = TopologyEvent("remove-edge", 0, 1)
        schedule = ScheduleDynamics({3: [event], 5: []}, name="demo")
        assert schedule.events_for_round(3) == (event,)
        assert schedule.events_for_round(4) == ()
        assert schedule.horizon == 3  # the empty round-5 entry is dropped
        assert schedule.num_events == 1
        assert str(schedule) == "demo"
        with pytest.raises(ValueError):
            ScheduleDynamics({0: [event]})

    def test_composed_dynamics_concatenates_in_order(self):
        first = ScheduleDynamics({1: [TopologyEvent("remove-edge", 0, 1)]}, name="a")
        second = ScheduleDynamics({1: [TopologyEvent("add-edge", 0, 1, latency=2)]}, name="b")
        composed = ComposedDynamics([first, second])
        assert [event.kind for event in composed.events_for_round(1)] == ["remove-edge", "add-edge"]
        assert str(composed) == "a+b"


# ----------------------------------------------------------------------
# Deterministic generators
# ----------------------------------------------------------------------
class TestGenerators:
    def test_markov_churn_is_deterministic(self):
        schedules = [
            markov_churn(_bridge_graph(), horizon=50, leave_prob=0.1, rejoin_prob=0.3, seed=4)
            for _ in range(2)
        ]
        rounds = range(1, 51)
        assert [schedules[0].events_for_round(r) for r in rounds] == [
            schedules[1].events_for_round(r) for r in rounds
        ]
        different = markov_churn(
            _bridge_graph(), horizon=50, leave_prob=0.1, rejoin_prob=0.3, seed=5
        )
        assert any(
            schedules[0].events_for_round(r) != different.events_for_round(r) for r in rounds
        )

    def test_markov_churn_respects_protect_and_restores_at_horizon(self):
        graph = _bridge_graph()
        protected = graph.nodes()[0]
        schedule = markov_churn(
            graph, horizon=30, leave_prob=0.5, rejoin_prob=0.1, seed=2, protect=(protected,)
        )
        replay = graph.copy()
        for round_number in range(1, 31):
            for event in schedule.events_for_round(round_number):
                assert event.u != protected
            apply_events(replay, list(schedule.events_for_round(round_number)))
        assert replay == graph  # horizon restores the original topology

    def test_latency_drift_bounds_and_restoration(self):
        graph = _bridge_graph()
        schedule = periodic_latency_drift(graph, horizon=64, amplitude=0.9, period=16, seed=3)
        base = {frozenset((e.u, e.v)): e.latency for e in graph.edge_list()}
        replay = graph.copy()
        seen_events = 0
        for round_number in range(1, 65):
            events = schedule.events_for_round(round_number)
            seen_events += len(events)
            for event in events:
                assert event.kind == "set-latency"
                assert event.latency >= 1
                assert event.latency <= round(base[frozenset((event.u, event.v))] * 1.9)
            apply_events(replay, events)
        assert seen_events > 0
        assert schedule.events_for_round(65) == ()  # past the horizon
        assert replay == graph  # the horizon settles every edge back at base

    def test_drift_self_heals_after_churn_restores_base_latency(self):
        """A churn rejoin at base latency must snap back onto the drift curve.

        Regression: the drift schedule used to emit only value *transitions*,
        so an edge restored at base latency by a ``node-join`` silently sat
        off the documented formula until the sinusoid next moved.
        """
        graph = path_graph(2)
        graph.set_latency(0, 1, 16)
        drift = periodic_latency_drift(graph, horizon=40, amplitude=0.5, period=16, seed=1)
        churn_like = ScheduleDynamics(
            {
                5: [TopologyEvent("node-leave", 1)],
                9: [TopologyEvent("node-join", 1, edges=((0, 16),))],
            },
            name="leave-rejoin",
        )
        churned = graph.copy()
        pure = graph.copy()
        composed = ComposedDynamics([churn_like, drift])
        for round_number in range(1, 13):
            apply_events(churned, composed.events_for_round(round_number))
            apply_events(pure, drift.events_for_round(round_number))
        # From the rejoin round on, the churned edge must match the edge
        # that only ever drifted.
        assert churned.latency(0, 1) == pure.latency(0, 1)

    def test_bridge_flapping_targets_slowest_edge(self):
        graph = _bridge_graph()
        slowest = max(graph.edge_list(), key=lambda e: e.latency)
        schedule = slow_bridge_flapping(graph, horizon=40, period=10)
        touched = {
            frozenset((event.u, event.v))
            for r in range(1, 41)
            for event in schedule.events_for_round(r)
        }
        assert touched == {frozenset((slowest.u, slowest.v))}
        replay = graph.copy()
        for round_number in range(1, 41):
            apply_events(replay, list(schedule.events_for_round(round_number)))
        assert replay == graph  # the bridge ends restored at its base latency


# ----------------------------------------------------------------------
# Cross-backend parity (the acceptance criterion)
# ----------------------------------------------------------------------
def _schedule_for(name, graph):
    if name == "churn":
        return markov_churn(graph, horizon=60, leave_prob=0.08, rejoin_prob=0.35, seed=13)
    if name == "drift":
        return periodic_latency_drift(graph, horizon=60, amplitude=0.6, period=12, seed=13)
    if name == "flap":
        return slow_bridge_flapping(graph, horizon=60, period=8)
    return ComposedDynamics(
        [
            markov_churn(graph, horizon=60, leave_prob=0.08, rejoin_prob=0.35, seed=13),
            periodic_latency_drift(graph, horizon=60, amplitude=0.6, period=12, seed=13),
        ]
    )


class TestBackendParity:
    @pytest.mark.parametrize("scenario", ["churn", "drift", "flap", "churn+drift"])
    @pytest.mark.parametrize("builder", [_bridge_graph, _er_graph])
    def test_informed_counts_identical_across_backends(self, scenario, builder):
        reference_counts, reference_metrics = _trace(
            builder(), "reference", _schedule_for(scenario, builder())
        )
        fast_counts, fast_metrics = _trace(builder(), "fast", _schedule_for(scenario, builder()))
        assert fast_counts == reference_counts
        assert fast_metrics.rounds == reference_metrics.rounds
        assert fast_metrics.activations == reference_metrics.activations
        assert fast_metrics.messages == reference_metrics.messages
        assert fast_metrics.lost_exchanges == reference_metrics.lost_exchanges

    def test_round_robin_parity_under_churn(self):
        reference_counts, _ = _trace(
            _er_graph(), "reference", _schedule_for("churn", _er_graph()), select="round-robin"
        )
        fast_counts, _ = _trace(
            _er_graph(), "fast", _schedule_for("churn", _er_graph()), select="round-robin"
        )
        assert fast_counts == reference_counts

    def test_algorithm_run_parity_under_dynamics(self):
        results = {}
        for backend in ("reference", "fast"):
            graph = _er_graph()
            schedule = _schedule_for("churn+drift", graph)
            results[backend] = PushPullGossip(task=Task.ONE_TO_ALL).run(
                graph, source=graph.nodes()[0], seed=3, engine=backend, dynamics=schedule
            )
        fast, reference = results["fast"], results["reference"]
        assert fast.time == reference.time
        assert fast.rounds_simulated == reference.rounds_simulated
        assert fast.metrics.lost_exchanges == reference.metrics.lost_exchanges
        assert fast.metrics.edge_activations == reference.metrics.edge_activations
        assert fast.details["dynamics"] == reference.details["dynamics"]


# ----------------------------------------------------------------------
# Lost-exchange semantics
# ----------------------------------------------------------------------
class TestLostExchanges:
    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_removal_drops_in_flight_exchange(self, backend):
        """An exchange over a removed edge never delivers and is counted."""
        graph = path_graph(2)
        graph.set_latency(0, 1, 5)
        schedule = ScheduleDynamics(
            {3: [TopologyEvent("remove-edge", 0, 1)], 7: [TopologyEvent("add-edge", 0, 1, latency=1)]},
            name="cut",
        )
        engine, _ = create_engine(
            graph, backend, capability=PolicyCapability.UNIFORM_RANDOM, dynamics=schedule
        )
        rumor = engine.seed_rumor(0)
        spec = RoundPolicySpec(select="round-robin")
        for _ in range(6):
            engine.step(spec)
        # Rounds 1-2 initiated two latency-5 exchanges from node 0 (node 1,
        # uninformed, also gossips but delivery is what we track); the
        # removal at round 3 must cancel everything in flight.
        assert not engine.dissemination_complete(rumor)
        assert engine.metrics.lost_exchanges > 0
        for _ in range(4):
            if engine.dissemination_complete(rumor):
                break
            engine.step(spec)
        assert engine.dissemination_complete(rumor)  # via the re-added fast edge

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_same_round_remove_and_readd_still_drops(self, backend):
        """Re-adding a removed edge within the same round does not resurrect.

        The round's *net* topology change is nil (and with a single edge the
        CSR layout is bit-identical too), so this pins the contract that
        drops follow the events actually applied, not the net diff.
        """
        graph = path_graph(2)
        graph.set_latency(0, 1, 5)
        schedule = ScheduleDynamics(
            {
                3: [
                    TopologyEvent("remove-edge", 0, 1),
                    TopologyEvent("add-edge", 0, 1, latency=5),
                ]
            },
            name="same-round-flap",
        )
        engine, _ = create_engine(
            graph, backend, capability=PolicyCapability.UNIFORM_RANDOM, dynamics=schedule
        )
        rumor = engine.seed_rumor(0)
        spec = RoundPolicySpec(select="round-robin")
        for _ in range(6):
            engine.step(spec)
        # The latency-5 exchanges initiated in rounds 1-2 would deliver at
        # rounds 6-7; the round-3 flap must have cancelled them.
        assert engine.metrics.lost_exchanges > 0
        assert not engine.dissemination_complete(rumor)

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_same_round_flap_drops_when_adjacency_order_changes(self, backend):
        """Same contract when the re-add lands at a different adjacency slot.

        On ``path_graph(3)`` re-adding ``{0, 1}`` moves it behind ``{1, 2}``
        in node 1's adjacency, so the fast backend takes the full re-snapshot
        route rather than the layout-identical shortcut.
        """
        graph = path_graph(3)
        graph.set_latency(0, 1, 6)
        graph.set_latency(1, 2, 6)
        schedule = ScheduleDynamics(
            {
                2: [
                    TopologyEvent("remove-edge", 0, 1),
                    TopologyEvent("add-edge", 0, 1, latency=6),
                ]
            },
            name="reordering-flap",
        )
        engine, _ = create_engine(
            graph, backend, capability=PolicyCapability.UNIFORM_RANDOM, dynamics=schedule
        )
        engine.seed_rumor(0)
        spec = RoundPolicySpec(select="round-robin")
        for _ in range(2):
            engine.step(spec)
        assert engine.metrics.lost_exchanges > 0

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_drift_does_not_affect_in_flight_exchanges(self, backend):
        """A latency change applies to future initiations only."""
        graph = path_graph(2)
        graph.set_latency(0, 1, 4)
        schedule = ScheduleDynamics(
            {2: [TopologyEvent("set-latency", 0, 1, latency=50)]}, name="slowdown"
        )
        engine, _ = create_engine(
            graph, backend, capability=PolicyCapability.UNIFORM_RANDOM, dynamics=schedule
        )
        rumor = engine.seed_rumor(0)
        spec = RoundPolicySpec(select="round-robin")
        for _ in range(5):
            engine.step(spec)
        # The round-1 exchange was initiated at latency 4 and must deliver
        # at round 5 even though the edge now has latency 50.
        assert engine.dissemination_complete(rumor)
        assert engine.metrics.lost_exchanges == 0


# ----------------------------------------------------------------------
# No-op schedule == static run (hypothesis property)
# ----------------------------------------------------------------------
class TestNoOpSchedule:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        n=st.integers(min_value=4, max_value=24),
        backend=st.sampled_from(["reference", "fast"]),
    )
    def test_noop_schedule_reproduces_static_run(self, seed, n, backend):
        """An empty schedule must not perturb the trajectory in any way."""
        static_counts, static_metrics = _trace(
            weighted_erdos_renyi(n, 0.4, seed=seed), backend, None, policy_seed=seed
        )
        noop_counts, noop_metrics = _trace(
            weighted_erdos_renyi(n, 0.4, seed=seed),
            backend,
            ScheduleDynamics({}, name="noop"),
            policy_seed=seed,
        )
        assert noop_counts == static_counts
        assert noop_metrics.as_dict() == static_metrics.as_dict()
        assert noop_metrics.edge_activations == static_metrics.edge_activations


# ----------------------------------------------------------------------
# Direct mutation mid-run: safe resync or loud failure (bugfix)
# ----------------------------------------------------------------------
class TestMidRunMutation:
    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_edge_removal_between_steps_is_resynced(self, backend):
        """The engine must not serve pre-mutation adjacency from a stale cache."""
        graph = path_graph(3)
        engine, _ = create_engine(graph, backend, capability=PolicyCapability.UNIFORM_RANDOM)
        rumor = engine.seed_rumor(0)
        spec = RoundPolicySpec(select="round-robin")
        engine.step(spec)
        graph.remove_edge(1, 2)
        for _ in range(5):
            engine.step(spec)
        # Node 2 is unreachable after the cut: nothing may deliver to it.
        assert len(engine.informed_nodes(rumor)) <= 2
        graph.add_edge(1, 2, latency=1)
        for _ in range(5):
            engine.step(spec)
        assert engine.dissemination_complete(rumor)

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_node_removal_between_steps_raises(self, backend):
        graph = path_graph(4)
        engine, _ = create_engine(graph, backend, capability=PolicyCapability.UNIFORM_RANDOM)
        engine.seed_rumor(0)
        spec = RoundPolicySpec(select="round-robin")
        engine.step(spec)
        graph.remove_node(3)
        with pytest.raises(GraphError, match="removed"):
            engine.step(spec)

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_appended_node_between_steps_is_adopted(self, backend):
        graph = path_graph(3)
        engine, _ = create_engine(graph, backend, capability=PolicyCapability.UNIFORM_RANDOM)
        rumor = engine.seed_rumor(0)
        spec = RoundPolicySpec(select="round-robin")
        engine.step(spec)
        graph.add_edge(2, 3, latency=1)  # a brand-new node joins the network
        for _ in range(8):
            engine.step(spec)
        assert engine.dissemination_complete(rumor)
        assert 3 in engine.informed_nodes(rumor)


# ----------------------------------------------------------------------
# Surface: algorithm knob and metric plumbing
# ----------------------------------------------------------------------
class TestSurface:
    def test_unsupported_algorithm_rejects_dynamics(self):
        graph = _er_graph()
        schedule = ScheduleDynamics({}, name="noop")
        with pytest.raises(GraphError, match="does not support topology dynamics"):
            SpannerBroadcast().run(graph, dynamics=schedule)

    def test_local_broadcast_task_rejects_dynamics(self):
        """Churn makes the local-broadcast predicate vacuously easier.

        The predicate is relative to each node's current neighbour set, so
        a churned-out node would count as complete without ever hearing
        from the neighbours of the settled topology — reject loudly.
        """
        from repro.gossip import PushPullGossip, RandomizedLocalBroadcast

        graph = _er_graph()
        schedule = ScheduleDynamics({}, name="noop")
        with pytest.raises(GraphError, match="local broadcast"):
            RandomizedLocalBroadcast().run(graph, dynamics=schedule)
        with pytest.raises(GraphError, match="local broadcast"):
            PushPullGossip(task=Task.LOCAL_BROADCAST).run(graph, dynamics=schedule)

    def test_flooding_reports_dynamics_details(self):
        graph = _bridge_graph()
        schedule = markov_churn(graph, horizon=40, leave_prob=0.1, rejoin_prob=0.4, seed=6)
        result = FloodingGossip(task=Task.ONE_TO_ALL).run(
            graph, source=graph.nodes()[0], seed=6, dynamics=schedule
        )
        assert result.complete
        assert result.details["dynamics"] == str(schedule)
        assert result.details["lost_exchanges"] == result.metrics.lost_exchanges

    def test_lost_exchanges_round_trips_through_as_dict_and_merge(self):
        from repro.simulation import SimulationMetrics

        first, second = SimulationMetrics(), SimulationMetrics()
        first.record_lost(2)
        second.record_lost(3)
        first.merge(second)
        assert first.lost_exchanges == 5
        assert first.as_dict()["lost_exchanges"] == 5
