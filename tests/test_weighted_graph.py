"""Unit tests for repro.graphs.weighted_graph."""

from __future__ import annotations

import pytest

from repro.graphs import Edge, GraphError, WeightedGraph


class TestEdge:
    def test_canonical_orders_endpoints(self):
        assert Edge.canonical(2, 1, 3) == Edge.canonical(1, 2, 3)

    def test_other_endpoint(self):
        edge = Edge.canonical(1, 2, 5)
        assert edge.other(1) == 2
        assert edge.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        edge = Edge.canonical(1, 2, 5)
        with pytest.raises(GraphError):
            edge.other(3)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(GraphError):
            Edge(1, 2, 0)

    def test_endpoints(self):
        assert Edge.canonical(4, 3, 1).endpoints() == (3, 4)


class TestConstruction:
    def test_add_nodes_and_edges(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 3)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.latency("a", "b") == 3
        assert graph.latency("b", "a") == 3

    def test_add_node_idempotent(self):
        graph = WeightedGraph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.num_nodes == 1

    def test_self_loop_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, 1)

    def test_non_integer_latency_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 1.5)  # type: ignore[arg-type]

    def test_nonpositive_latency_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 0)

    def test_re_add_same_latency_is_noop(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2)
        graph.add_edge(0, 1, 2)
        assert graph.num_edges == 1

    def test_re_add_different_latency_rejected(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 3)

    def test_set_latency(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2)
        graph.set_latency(0, 1, 7)
        assert graph.latency(1, 0) == 7

    def test_set_latency_missing_edge(self):
        graph = WeightedGraph(range(2))
        with pytest.raises(GraphError):
            graph.set_latency(0, 1, 3)

    def test_remove_edge(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2)
        graph.remove_edge(0, 1)
        assert graph.num_edges == 0
        assert not graph.has_edge(0, 1)

    def test_remove_node_removes_incident_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1)
        graph.add_edge(1, 2, 1)
        graph.remove_node(1)
        assert graph.num_nodes == 2
        assert graph.num_edges == 0

    def test_remove_missing_node(self):
        graph = WeightedGraph()
        with pytest.raises(GraphError):
            graph.remove_node(42)


class TestQueries:
    def test_degrees_and_volume(self, triangle):
        assert triangle.degree(0) == 2
        assert triangle.max_degree() == 2
        assert triangle.volume([0, 1]) == 4
        assert triangle.total_volume() == 6

    def test_neighbors(self, triangle):
        assert set(triangle.neighbors(1)) == {0, 2}

    def test_neighbor_latencies(self, triangle):
        assert triangle.neighbor_latencies(0) == {1: 1, 2: 4}

    def test_missing_node_queries_raise(self):
        graph = WeightedGraph()
        with pytest.raises(GraphError):
            graph.neighbors(0)
        with pytest.raises(GraphError):
            graph.degree(0)
        with pytest.raises(GraphError):
            graph.latency(0, 1)

    def test_edges_iterated_once(self, triangle):
        edges = triangle.edge_list()
        assert len(edges) == 3
        assert len(set(edges)) == 3

    def test_latency_extremes(self, triangle):
        assert triangle.max_latency() == 4
        assert triangle.min_latency() == 1
        assert triangle.distinct_latencies() == [1, 2, 4]

    def test_empty_graph_latency_defaults(self):
        graph = WeightedGraph(range(3))
        assert graph.max_latency() == 1
        assert graph.min_latency() == 1

    def test_contains_len_iter(self, triangle):
        assert 0 in triangle
        assert 5 not in triangle
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]


class TestDerivedGraphs:
    def test_latency_subgraph_keeps_all_nodes(self, triangle):
        sub = triangle.latency_subgraph(1)
        assert sub.num_nodes == 3
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)

    def test_latency_subgraph_threshold_inclusive(self, triangle):
        sub = triangle.latency_subgraph(2)
        assert sub.num_edges == 2

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.set_latency(0, 1, 9)
        assert triangle.latency(0, 1) == 1
        assert clone == clone.copy()

    def test_equality(self, triangle):
        assert triangle == triangle.copy()
        other = triangle.copy()
        other.set_latency(0, 1, 9)
        assert triangle != other

    def test_relabel_to_integers(self):
        graph = WeightedGraph()
        graph.add_edge("x", "y", 2)
        graph.add_edge("y", "z", 3)
        relabeled, mapping = graph.relabel_to_integers()
        assert sorted(relabeled.nodes()) == [0, 1, 2]
        assert relabeled.latency(mapping["x"], mapping["y"]) == 2


class TestInterop:
    def test_networkx_round_trip(self, triangle):
        nx_graph = triangle.to_networkx()
        back = WeightedGraph.from_networkx(nx_graph)
        assert back == triangle

    def test_from_networkx_rounds_float_latencies(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1, latency=2.6)
        nx_graph.add_edge(1, 2)
        graph = WeightedGraph.from_networkx(nx_graph, default_latency=5)
        assert graph.latency(0, 1) == 3
        assert graph.latency(1, 2) == 5


class TestStructure:
    def test_connectivity(self, triangle):
        assert triangle.is_connected()
        disconnected = WeightedGraph(range(4))
        disconnected.add_edge(0, 1, 1)
        assert not disconnected.is_connected()

    def test_empty_graph_not_connected(self):
        assert not WeightedGraph().is_connected()

    def test_connected_components(self):
        graph = WeightedGraph(range(5))
        graph.add_edge(0, 1, 1)
        graph.add_edge(2, 3, 1)
        components = sorted(graph.connected_components(), key=lambda c: min(c))
        assert components == [{0, 1}, {2, 3}, {4}]

    def test_is_regular(self, small_clique, small_star):
        assert small_clique.is_regular()
        assert not small_star.is_regular()
