"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_graph, main


class TestBuilders:
    def test_build_graph_families(self):
        for family in ["clique", "expander", "grid", "erdos-renyi", "barabasi-albert"]:
            graph = build_graph(family, 20, "uniform", seed=1)
            assert graph.num_nodes >= 16
            assert graph.is_connected()

    def test_build_graph_latency_models(self):
        unit = build_graph("clique", 8, "unit", seed=0)
        assert unit.max_latency() == 1
        bimodal = build_graph("clique", 8, "bimodal", seed=0)
        assert bimodal.max_latency() in {1, 64}

    def test_build_graph_unknown_family(self):
        with pytest.raises(SystemExit):
            build_graph("torus", 8, "unit", seed=0)

    def test_build_graph_unknown_latency(self):
        with pytest.raises(SystemExit):
            build_graph("clique", 8, "warp", seed=0)

    def test_build_graph_pins_slow_bridge_latency(self):
        # Same rule as the scenario layer: slow-bridge latencies are fixed
        # by construction, so claiming another model is an error, not a
        # silent no-op (`conductance --graph slow-bridge` hits this path).
        with pytest.raises(SystemExit, match="slow-bridge"):
            build_graph("slow-bridge", 16, "bimodal", seed=0)
        assert build_graph("slow-bridge", 16, "unit", seed=0).is_connected()


class TestCommands:
    def test_run_command(self, capsys):
        exit_code = main(["run", "--algorithm", "push-pull", "--graph", "clique", "--nodes", "12", "--seed", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "push-pull" in captured
        assert "time" in captured

    def test_run_flooding_command(self, capsys):
        exit_code = main(["run", "--algorithm", "flooding", "--graph", "grid", "--nodes", "16", "--latency", "unit"])
        assert exit_code == 0
        assert "flooding" in capsys.readouterr().out

    def test_run_command_with_dynamics(self, capsys):
        exit_code = main(
            [
                "run", "--algorithm", "push-pull", "--graph", "expander", "--nodes", "24",
                "--seed", "3", "--dynamics", "markov-churn", "--churn-rate", "0.05",
                "--dynamics-horizon", "200",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "markov-churn" in captured
        assert "lost" in captured

    def test_run_command_rejects_dynamics_for_static_algorithm(self):
        with pytest.raises(SystemExit, match="does not support topology dynamics"):
            main(
                ["run", "--algorithm", "spanner", "--graph", "clique", "--nodes", "10",
                 "--dynamics", "latency-drift"]
            )

    def test_run_command_with_reps_batches_replications(self, capsys):
        exit_code = main(
            ["run", "--algorithm", "push-pull", "--graph", "clique", "--nodes", "12",
             "--seed", "1", "--reps", "6"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "engine     : batch" in captured
        assert "reps       : 6" in captured
        assert "time_min" not in captured  # aggregate line is inline, not raw keys
        assert "stdev" in captured

    def test_run_scenario_file_accepts_reps_override(self, capsys, tmp_path):
        from repro.scenario import dump_scenario, load_named_scenario

        path = tmp_path / "baseline.json"
        dump_scenario(load_named_scenario("baseline-pushpull-er64").patched({"graph.n": 24}), str(path))
        exit_code = main(["run", "--scenario", str(path), "--reps", "4"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "reps       : 4" in captured
        assert "engine     : batch" in captured

    def test_run_command_rejects_reference_engine_with_reps(self):
        with pytest.raises(SystemExit, match="numpy sampling mode"):
            main(
                ["run", "--algorithm", "push-pull", "--graph", "clique", "--nodes", "10",
                 "--engine", "reference", "--reps", "4"]
            )

    def test_run_command_rejects_edge_engine_with_reps(self):
        with pytest.raises(SystemExit, match="no replication axis"):
            main(
                ["run", "--algorithm", "push-pull", "--graph", "clique", "--nodes", "10",
                 "--engine", "edge", "--reps", "4"]
            )

    def test_run_command_edge_memory_guard_exits_cleanly(self, monkeypatch):
        from repro.simulation import edge_engine

        monkeypatch.setattr(
            edge_engine.EdgeEngine,
            "_estimate_bytes",
            lambda self, words=1: {
                "knowledge": 1 << 40, "csr": 0, "pipeline": 0, "total": 1 << 40
            },
        )
        with pytest.raises(SystemExit, match="edge backend refuses"):
            main(
                ["run", "--algorithm", "push-pull", "--graph", "erdos-renyi",
                 "--nodes", "16", "--seed", "0", "--engine", "edge"]
            )

    def test_conductance_command(self, capsys):
        exit_code = main(["conductance", "--graph", "erdos-renyi", "--nodes", "10", "--seed", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "phi*" in captured
        assert "Theorem 5 holds  = True" in captured

    def test_conductance_ell_without_spectral_errors(self, capsys):
        exit_code = main(["conductance", "--nodes", "10", "--ell", "4"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--spectral" in captured.err

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestScenarioValidateErrors:
    """`scenario validate` must fail loudly, naming the file and the field."""

    def test_malformed_json_exits_nonzero_and_names_file(self, capsys, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{this is not json", encoding="utf-8")
        exit_code = main(["scenario", "validate", str(broken)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert str(broken) in captured.err
        assert "not valid JSON" in captured.err

    def test_invalid_field_exits_nonzero_and_names_field(self, capsys, tmp_path):
        from repro.scenario import load_named_scenario

        bad = tmp_path / "bad-family.json"
        text = load_named_scenario("baseline-pushpull-er64").to_json()
        bad.write_text(text.replace('"erdos-renyi"', '"torus"'), encoding="utf-8")
        exit_code = main(["scenario", "validate", str(bad)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert str(bad) in captured.err
        assert "graph.family" in captured.err

    def test_valid_files_still_pass_alongside_invalid_ones(self, capsys, tmp_path):
        from repro.scenario import dump_scenario, load_named_scenario

        good = tmp_path / "good.json"
        dump_scenario(load_named_scenario("baseline-pushpull-er64"), str(good))
        broken = tmp_path / "broken.json"
        broken.write_text("[]", encoding="utf-8")
        exit_code = main(["scenario", "validate", str(good), str(broken)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert f"{good}: ok" in captured.out
        assert str(broken) in captured.err

    def test_bad_family_param_names_parameter_on_stderr(self, capsys, tmp_path):
        from repro.scenario import load_named_scenario

        bad = tmp_path / "bad-k.json"
        text = load_named_scenario("sir-pushpull-ws96").to_json()
        bad.write_text(text.replace('"k": 8', '"k": 7'), encoding="utf-8")
        exit_code = main(["scenario", "validate", str(bad)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "INVALID" in captured.err
        assert "graph.params.k" in captured.err
        assert "even integer" in captured.err

    def test_unknown_family_param_is_invalid(self, capsys, tmp_path):
        from repro.scenario import load_named_scenario

        bad = tmp_path / "bad-param.json"
        text = load_named_scenario("sir-pushpull-kron64").to_json()
        assert '"params": {}' in text  # the bundled spec rides on defaults
        bad.write_text(text.replace('"params": {}', '"params": {"fan_out": 8}'), encoding="utf-8")
        exit_code = main(["scenario", "validate", str(bad)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "graph.params.fan_out" in captured.err
        assert "kronecker" in captured.err

    def test_bad_forget_after_is_invalid(self, capsys, tmp_path):
        from repro.scenario import load_named_scenario

        bad = tmp_path / "bad-forget.json"
        text = load_named_scenario("sir-pushpull-powerlaw96").to_json()
        bad.write_text(text.replace('"forget_after": 16', '"forget_after": 0'), encoding="utf-8")
        exit_code = main(["scenario", "validate", str(bad)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "forget_after" in captured.err

    def test_bundled_sir_scenarios_validate_clean(self, capsys):
        from repro.scenario import scenario_library_dir

        library = scenario_library_dir()
        paths = [
            os.path.join(library, name)
            for name in (
                "sir-pushpull-ws96.json",
                "sir-pushpull-powerlaw96.json",
                "sir-pushpull-kron64.json",
            )
        ]
        exit_code = main(["scenario", "validate", *paths])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.count(": ok") == 3


class TestCalibrateCommand:
    def _spec_path(self, tmp_path):
        from repro.scenario import (
            DynamicsSpec,
            FaultSpec,
            GraphSpec,
            ScenarioSpec,
            dump_scenario,
        )

        spec = ScenarioSpec(
            name="cli-calib",
            algorithm="push-pull",
            task="one-to-all",
            graph=GraphSpec(family="erdos-renyi", n=24, latency="unit"),
            seed=3,
            max_rounds=64,
            dynamics=(DynamicsSpec(kind="markov-churn", rate=0.06, horizon=64),),
            faults=FaultSpec(crash_fraction=0.2, crash_round=2),
        ).validate()
        path = tmp_path / "cli-calib.json"
        dump_scenario(spec, str(path))
        return str(path)

    def _fast_args(self):
        return [
            "--particles", "6", "--generations", "2", "--reps", "4",
            "--max-attempts", "6", "--seed", "4",
        ]

    def test_self_test_fit_prints_posterior_table(self, capsys, tmp_path):
        exit_code = main(
            [
                "calibrate", "--scenario", self._spec_path(tmp_path), "--self-test",
                "--prior", "faults.crash_fraction:0:0.5",
                *self._fast_args(),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "posterior" in captured
        assert "faults.crash_fraction" in captured
        assert "gen 0: epsilon=inf" in captured
        assert "in90" in captured

    def test_observed_json_curve_file(self, capsys, tmp_path):
        import json

        curve = tmp_path / "curve.json"
        curve.write_text(json.dumps([1, 4, 9, 16, 22, 24, 24]), encoding="utf-8")
        exit_code = main(
            [
                "calibrate", "--scenario", self._spec_path(tmp_path),
                "--observed", str(curve),
                "--prior", "dynamics.0.rate:0:0.2",
                *self._fast_args(),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "dynamics.0.rate" in captured
        # No ground truth for file-observed fits: no self-test verdict.
        assert "in90" not in captured

    def test_observed_csv_curve_file(self, capsys, tmp_path):
        curve = tmp_path / "curve.csv"
        curve.write_text("1, 4, 9\n16 22\n24  # plateau\n", encoding="utf-8")
        exit_code = main(
            [
                "calibrate", "--scenario", self._spec_path(tmp_path),
                "--observed", str(curve),
                "--prior", "faults.crash_fraction:0:0.5",
                *self._fast_args(),
            ]
        )
        assert exit_code == 0

    def test_requires_target_and_rejects_both(self, tmp_path):
        path = self._spec_path(tmp_path)
        with pytest.raises(SystemExit, match="needs a target"):
            main(["calibrate", "--scenario", path, "--prior", "graph.n:8:64:int"])
        curve = tmp_path / "c.json"
        curve.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(SystemExit, match="drop --observed"):
            main(
                [
                    "calibrate", "--scenario", path, "--self-test",
                    "--observed", str(curve), "--prior", "graph.n:8:64:int",
                ]
            )

    def test_requires_at_least_one_prior(self, tmp_path):
        with pytest.raises(SystemExit, match="--prior"):
            main(["calibrate", "--scenario", self._spec_path(tmp_path), "--self-test"])

    def test_malformed_prior_flags_exit_with_message(self, tmp_path):
        path = self._spec_path(tmp_path)
        with pytest.raises(SystemExit, match="PATH:LOW:HIGH"):
            main(["calibrate", "--scenario", path, "--self-test", "--prior", "graph.n"])
        with pytest.raises(SystemExit, match="must be numbers"):
            main(["calibrate", "--scenario", path, "--self-test", "--prior", "graph.n:a:b"])
        with pytest.raises(SystemExit, match="unknown modifier"):
            main(["calibrate", "--scenario", path, "--self-test", "--prior", "graph.n:1:2:exp"])

    def test_unknown_prior_path_exits_naming_choices(self, tmp_path):
        with pytest.raises(SystemExit, match="choose from"):
            main(
                [
                    "calibrate", "--scenario", self._spec_path(tmp_path), "--self-test",
                    "--prior", "graph.family:0:1", *self._fast_args(),
                ]
            )

    def test_library_scenario_name_resolves(self, capsys):
        exit_code = main(
            [
                "calibrate", "--scenario", "calib-pushpull-er48", "--self-test",
                "--prior", "faults.crash_fraction:0:0.5",
                "--particles", "4", "--generations", "1", "--reps", "3",
                "--max-attempts", "4", "--seed", "2",
            ]
        )
        assert exit_code == 0
        assert "calib-pushpull-er48" not in capsys.readouterr().err
