"""Unit tests for the guessing game, predicates, and strategies."""

from __future__ import annotations

import random

import pytest

from repro.guessing_game import (
    AdaptiveFreshStrategy,
    ExhaustiveSweepStrategy,
    GameError,
    GuessingGame,
    RandomGuessingStrategy,
    fixed_predicate,
    full_predicate,
    measure_game_rounds,
    play_game,
    random_p_oblivious_lower_bound,
    random_p_predicate,
    random_p_round_lower_bound,
    singleton_predicate,
    singleton_round_lower_bound,
)


class TestGameMechanics:
    def test_hit_removes_matching_b_components(self):
        # Target shares B-component 1 across two pairs; hitting either clears both.
        game = GuessingGame(m=3, target={(0, 1), (2, 1), (2, 2)})
        hits = game.submit_guesses({(0, 1)})
        assert hits == frozenset({(0, 1)})
        assert game.target == {(2, 2)}
        assert not game.finished

    def test_game_finishes_when_target_empty(self):
        game = GuessingGame(m=2, target={(0, 0)})
        game.submit_guesses({(0, 0)})
        assert game.finished
        with pytest.raises(GameError):
            game.submit_guesses({(1, 1)})

    def test_miss_leaves_target_unchanged(self):
        game = GuessingGame(m=3, target={(1, 1)})
        hits = game.submit_guesses({(0, 0), (2, 2)})
        assert hits == frozenset()
        assert game.target == {(1, 1)}

    def test_guess_budget_enforced(self):
        game = GuessingGame(m=2, target={(0, 0)}, max_guesses_per_round=3)
        with pytest.raises(GameError):
            game.submit_guesses({(0, 0), (0, 1), (1, 0), (1, 1)})
        # The default budget of 2m guesses is accepted.
        default_game = GuessingGame(m=2, target={(0, 0)})
        default_game.submit_guesses({(0, 1), (1, 0), (1, 1)})
        assert default_game.round == 1

    def test_out_of_range_guess_rejected(self):
        game = GuessingGame(m=2, target={(0, 0)})
        with pytest.raises(GameError):
            game.submit_guesses({(5, 0)})

    def test_out_of_range_target_rejected(self):
        with pytest.raises(GameError):
            GuessingGame(m=2, target={(0, 9)})

    def test_state_snapshot(self):
        game = GuessingGame(m=4, target={(0, 0), (1, 1)})
        game.submit_guesses({(3, 3)})
        state = game.state()
        assert state.round == 1
        assert state.remaining_targets == 2
        assert not state.finished
        assert state.guesses_submitted == 1

    def test_remaining_b_components(self):
        game = GuessingGame(m=4, target={(0, 0), (1, 1), (2, 1)})
        assert game.remaining_b_components() == {0, 1}


class TestPredicates:
    def test_singleton_predicate(self):
        target = singleton_predicate()(10, random.Random(1))
        assert len(target) == 1

    def test_random_p_predicate_scaling(self):
        rng = random.Random(2)
        sparse = random_p_predicate(0.05, ensure_nonempty=False)(20, rng)
        dense = random_p_predicate(0.6, ensure_nonempty=False)(20, random.Random(2))
        assert len(dense) > len(sparse)

    def test_random_p_nonempty_guarantee(self):
        target = random_p_predicate(0.0)(5, random.Random(3))
        assert len(target) == 1

    def test_random_p_validation(self):
        with pytest.raises(GameError):
            random_p_predicate(1.5)

    def test_fixed_predicate(self):
        predicate = fixed_predicate({(0, 1)})
        assert predicate(3, random.Random(0)) == {(0, 1)}
        with pytest.raises(GameError):
            fixed_predicate({(9, 9)})(3, random.Random(0))

    def test_full_predicate(self):
        assert len(full_predicate()(4, random.Random(0))) == 16


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy_factory",
        [AdaptiveFreshStrategy, RandomGuessingStrategy, ExhaustiveSweepStrategy],
    )
    def test_every_strategy_wins_singleton(self, strategy_factory):
        playout = play_game(12, singleton_predicate(), strategy_factory(), seed=1)
        assert playout.rounds >= 1
        assert playout.initial_target_size == 1

    @pytest.mark.parametrize(
        "strategy_factory",
        [AdaptiveFreshStrategy, RandomGuessingStrategy],
    )
    def test_every_strategy_wins_random_p(self, strategy_factory):
        playout = play_game(12, random_p_predicate(0.2), strategy_factory(), seed=2)
        assert playout.rounds >= 1

    def test_sweep_strategy_worst_case_is_linear(self):
        # The deterministic sweep needs ~m/2 rounds on average and up to m
        # rounds in the worst case for a singleton target.
        playout = play_game(16, fixed_predicate({(15, 15)}), ExhaustiveSweepStrategy(), seed=0)
        assert playout.rounds == 8  # last pair visited by the row-major sweep

    def test_adaptive_strategy_scales_linearly_with_m(self):
        small = measure_game_rounds(8, singleton_predicate(), AdaptiveFreshStrategy(), repetitions=8, seed=1)
        large = measure_game_rounds(32, singleton_predicate(), AdaptiveFreshStrategy(), repetitions=8, seed=1)
        assert large.mean_rounds > 2 * small.mean_rounds

    def test_random_guessing_needs_more_rounds_than_adaptive(self):
        p = 0.08
        adaptive = measure_game_rounds(24, random_p_predicate(p), AdaptiveFreshStrategy(), repetitions=6, seed=3)
        oblivious = measure_game_rounds(24, random_p_predicate(p), RandomGuessingStrategy(), repetitions=6, seed=3)
        assert oblivious.mean_rounds >= adaptive.mean_rounds

    def test_measurement_statistics_fields(self):
        stats = measure_game_rounds(10, singleton_predicate(), AdaptiveFreshStrategy(), repetitions=5, seed=4)
        assert stats.min_rounds <= stats.median_rounds <= stats.max_rounds
        assert stats.repetitions == 5
        assert stats.as_dict()["strategy"] == "adaptive"

    def test_repetitions_validation(self):
        with pytest.raises(ValueError):
            measure_game_rounds(5, singleton_predicate(), AdaptiveFreshStrategy(), repetitions=0)


class TestTheoreticalBounds:
    def test_singleton_bound_linear(self):
        assert singleton_round_lower_bound(100) == pytest.approx(49)
        assert singleton_round_lower_bound(2) >= 1

    def test_random_p_bounds(self):
        assert random_p_round_lower_bound(0.1) == pytest.approx(10)
        assert random_p_oblivious_lower_bound(0.1, 100) > random_p_round_lower_bound(0.1)

    def test_degenerate_p(self):
        assert random_p_round_lower_bound(0) == float("inf")
        assert random_p_oblivious_lower_bound(0, 10) == float("inf")
