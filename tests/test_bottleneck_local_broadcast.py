"""Unit tests for bottleneck analysis and the local-broadcast wrappers."""

from __future__ import annotations

import math

import pytest

from repro.core import find_bottleneck, suggest_upgrades
from repro.gossip import DTGLocalBroadcast, RandomizedLocalBroadcast, Task
from repro.graphs import (
    GraphError,
    WeightedGraph,
    clique,
    path_graph,
    two_cluster_slow_bridge,
    weighted_erdos_renyi,
)


class TestFindBottleneck:
    def test_slow_bridge_bottleneck_is_the_bridge(self, slow_bridge):
        report = find_bottleneck(slow_bridge)
        assert report.exact
        assert report.ell_star == 16
        # The bottleneck cut separates the two cliques: exactly one crossing
        # edge, and it is within the critical-latency threshold.
        assert len(report.fast_cut_edges) + len(report.slow_cut_edges) == 1
        assert report.critical_ratio == pytest.approx(report.ell_star / report.phi_star)

    def test_unit_clique_bottleneck(self):
        report = find_bottleneck(clique(8))
        assert report.ell_star == 1
        assert report.phi_star > 0
        assert not report.slow_cut_edges

    def test_large_graph_uses_approximation(self):
        graph = two_cluster_slow_bridge(12, fast_latency=1, slow_latency=64, bridges=1)
        report = find_bottleneck(graph, seed=1)
        assert not report.exact
        assert report.ell_star == 64
        # The sweep cut should isolate (approximately) one clique: few crossing edges.
        assert len(report.fast_cut_edges) + len(report.slow_cut_edges) <= 4

    def test_degenerate_graph_rejected(self):
        with pytest.raises(GraphError):
            find_bottleneck(WeightedGraph(range(3)))


class TestSuggestUpgrades:
    def test_upgrading_the_slow_bridge_improves_ratio(self):
        graph = two_cluster_slow_bridge(4, fast_latency=1, slow_latency=64, bridges=2)
        before = find_bottleneck(graph).critical_ratio
        suggestions = suggest_upgrades(graph, budget=1, upgraded_latency=1)
        assert suggestions, "expected at least one upgrade suggestion"
        edge, new_ratio = suggestions[0]
        assert edge.latency == 64
        assert new_ratio < before

    def test_budget_and_validation(self):
        graph = two_cluster_slow_bridge(4, fast_latency=1, slow_latency=32, bridges=2)
        suggestions = suggest_upgrades(graph, budget=2, upgraded_latency=1)
        assert len(suggestions) <= 2
        with pytest.raises(GraphError):
            suggest_upgrades(graph, budget=0)
        with pytest.raises(GraphError):
            suggest_upgrades(graph, budget=1, upgraded_latency=0)

    def test_no_suggestions_on_uniform_graph(self):
        # Nothing to upgrade when every edge already has the target latency.
        assert suggest_upgrades(clique(6), budget=2, upgraded_latency=1) == []


class TestLocalBroadcastWrappers:
    @pytest.mark.parametrize("algorithm_factory", [DTGLocalBroadcast, RandomizedLocalBroadcast])
    def test_solves_local_broadcast(self, algorithm_factory, small_weighted_er):
        result = algorithm_factory().run(small_weighted_er, seed=1)
        assert result.complete
        assert result.task is Task.LOCAL_BROADCAST
        assert result.time > 0

    def test_dtg_wrapper_reports_charged_time(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=8, bridges=1)
        result = DTGLocalBroadcast().run(graph)
        assert result.complete
        # Charged time is ell_max * DTG rounds, so it is a multiple of 8.
        assert result.time % 8 == 0
        assert result.details["ell"] == 8

    def test_randomized_wrapper_matches_push_pull_semantics(self):
        graph = path_graph(8)
        result = RandomizedLocalBroadcast().run(graph, seed=2)
        assert result.complete
        assert result.algorithm == "push-pull-local-broadcast"

    def test_disconnected_rejected(self):
        graph = WeightedGraph(range(3))
        graph.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            DTGLocalBroadcast().run(graph)
