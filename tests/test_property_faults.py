"""Property-based tests for fault injection (FaultPlan / the event pipeline).

Invariants checked over randomized graphs, fault schedules, and policies:

* a crashed node never initiates an exchange from its crash round on;
* no exchange delivers while an endpoint is crashed or its edge is dropped
  (dropped edges may still be *activated* — the initiation is paid for —
  but they never deliver anything);
* a crashed node's knowledge is frozen from its crash round on;
* a compiled fault schedule reproduces the *legacy* ``FaultyEngine``
  semantics bit-for-bit (the oracle below is a verbatim copy of the
  pre-pipeline plan-aware overrides), and replays identically on both
  simulation backends — also when composed with Markov churn through
  ``ComposedDynamics``;
* fault plans compose monotonically under ``merge`` (earliest failure wins,
  faults are never un-done, composition is commutative and idempotent).
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip import PushPullGossip, Task
from repro.graphs import weighted_erdos_renyi
from repro.graphs.dynamics import markov_churn
from repro.simulation import EventTrace, FaultPlan, FaultyEngine, GossipEngine
from repro.simulation.rng import make_rng

MAX_ROUNDS = 12

# The legacy FaultyEngine shim under test is deprecated by design; its
# warning is the expected behaviour, not noise worth failing or reporting.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class _LegacyFaultyEngine(GossipEngine):
    """The pre-pipeline FaultyEngine, kept verbatim as a parity oracle.

    Before faults were unified into the dynamics event pipeline, fault
    semantics lived in these plan-aware overrides.  The oracle re-creates
    them so a hypothesis property can assert that compiling the same plan
    onto the shared pipeline reproduces the old behaviour bit-for-bit.
    """

    def __init__(self, graph, fault_plan, blocking=False, trace=None):
        super().__init__(graph, blocking=blocking, trace=trace)
        self.fault_plan = fault_plan

    def _deliver_due_exchanges(self):
        while self._pending and self._pending[0].completes_at <= self.round:
            exchange = heapq.heappop(self._pending)
            u, v = exchange.initiator, exchange.responder
            self._outstanding[u] -= 1
            if (
                self.fault_plan.is_node_crashed(u, self.round)
                or self.fault_plan.is_node_crashed(v, self.round)
                or self.fault_plan.is_edge_dropped(u, v, self.round)
            ):
                continue
            new_for_v = self.knowledge[v].merge(set(exchange.initiator_payload))
            new_for_u = self.knowledge[u].merge(set(exchange.responder_payload))
            self.metrics.record_exchange_completed(
                payload_size=len(exchange.initiator_payload) + len(exchange.responder_payload)
            )
            self.metrics.record_deliveries(new_for_u + new_for_v)

    def step(self, policy):
        self._begin_round()
        self._deliver_due_exchanges()
        for node in self.graph.nodes():
            if self.fault_plan.is_node_crashed(node, self.round):
                continue
            if self.blocking and self._outstanding[node] > 0:
                continue
            choice = policy(self.node_view(node))
            if choice is None:
                continue
            self.initiate_exchange(node, choice)

    def dissemination_complete(self, rumor):
        survivors = self.fault_plan.surviving_nodes(self.graph, self.round)
        return all(self.knowledge[node].knows(rumor) for node in survivors)

    def all_to_all_complete(self):
        survivors = self.fault_plan.surviving_nodes(self.graph, self.round)
        return all(self.knowledge[node].origins() >= survivors for node in survivors)


@st.composite
def graph_and_plan(draw):
    """A small connected graph plus a random crash/drop schedule over it."""
    n = draw(st.integers(min_value=4, max_value=10))
    graph_seed = draw(st.integers(min_value=0, max_value=50))
    graph = weighted_erdos_renyi(n, 0.5, seed=graph_seed)
    nodes = graph.nodes()
    crashes = draw(
        st.dictionaries(
            st.sampled_from(nodes),
            st.integers(min_value=0, max_value=MAX_ROUNDS),
            max_size=n - 1,
        )
    )
    edges = [(edge.u, edge.v) for edge in graph.edge_list()]
    drops = draw(
        st.dictionaries(
            st.sampled_from(edges),
            st.integers(min_value=0, max_value=MAX_ROUNDS),
            max_size=len(edges),
        )
    )
    plan = FaultPlan(
        node_crashes=dict(crashes),
        edge_drops={frozenset(edge): round_number for edge, round_number in drops.items()},
    )
    policy_seed = draw(st.integers(min_value=0, max_value=50))
    return graph, plan, policy_seed


def _run_faulty(graph, plan, policy_seed):
    """Step a FaultyEngine for MAX_ROUNDS under seeded push-pull; return
    (trace, per-round origin snapshots of every node)."""
    trace = EventTrace()
    engine = FaultyEngine(graph, plan, trace=trace)
    engine.seed_all_rumors()
    rng = make_rng(policy_seed, "property-faults")

    def policy(view):
        return rng.choice(view.neighbors) if view.neighbors else None

    snapshots = []  # snapshots[r][node] = frozenset of known origins after round r+1
    for _ in range(MAX_ROUNDS):
        engine.step(policy)
        snapshots.append(
            {node: frozenset(engine.knowledge[node].origins()) for node in graph.nodes()}
        )
    return trace, snapshots


@settings(max_examples=25, deadline=None)
@given(graph_and_plan())
def test_crashed_nodes_never_initiate(case):
    graph, plan, policy_seed = case
    trace, _snapshots = _run_faulty(graph, plan, policy_seed)
    for event in trace.initiations():
        assert not plan.is_node_crashed(event.u, event.round), (
            f"crashed node {event.u} initiated an exchange in round {event.round}"
        )


@settings(max_examples=25, deadline=None)
@given(graph_and_plan())
def test_faulted_exchanges_never_deliver(case):
    graph, plan, policy_seed = case
    trace, _snapshots = _run_faulty(graph, plan, policy_seed)
    for event in trace.completions():
        assert not plan.is_node_crashed(event.u, event.round)
        assert not plan.is_node_crashed(event.v, event.round)
        assert not plan.is_edge_dropped(event.u, event.v, event.round), (
            f"dropped edge ({event.u}, {event.v}) delivered in round {event.round}"
        )


@settings(max_examples=25, deadline=None)
@given(graph_and_plan())
def test_crashed_nodes_knowledge_is_frozen(case):
    graph, plan, policy_seed = case
    _trace, snapshots = _run_faulty(graph, plan, policy_seed)
    for node, crash_round in plan.node_crashes.items():
        # snapshots[r] is the state after round r+1; from the crash round on
        # the node's origin set must never change again.
        frozen = [snapshots[r][node] for r in range(MAX_ROUNDS) if (r + 1) >= crash_round]
        assert all(state == frozen[0] for state in frozen), (
            f"node {node} (crashed at round {crash_round}) kept learning"
        )


@settings(max_examples=25, deadline=None)
@given(graph_and_plan())
def test_compiled_schedule_matches_legacy_faulty_engine_bit_for_bit(case):
    """The tentpole parity property: pipeline faults == legacy FaultyEngine.

    The same seeded plan is run through the legacy plan-aware oracle and
    through the compiled event schedule (via the FaultyEngine shim, which
    delegates to the plain engine + pipeline).  Same rng stream in both;
    per-round origin snapshots, rounds, activations, messages, and the
    fault-aware completion predicates must agree exactly.
    """
    graph, plan, policy_seed = case
    engines = {
        "legacy": _LegacyFaultyEngine(graph.copy(), plan),
        "pipeline": FaultyEngine(graph.copy(), plan),
    }
    rngs = {name: make_rng(policy_seed, "legacy-parity") for name in engines}
    for engine in engines.values():
        engine.seed_all_rumors()
    for _ in range(MAX_ROUNDS):
        snapshots = {}
        predicates = {}
        for name, engine in engines.items():
            rng = rngs[name]
            engine.step(lambda view: rng.choice(view.neighbors) if view.neighbors else None)
            snapshots[name] = {
                node: frozenset(engine.knowledge[node].origins()) for node in engine.graph.nodes()
            }
            predicates[name] = engine.all_to_all_complete()
        assert snapshots["legacy"] == snapshots["pipeline"]
        assert predicates["legacy"] == predicates["pipeline"]
    legacy, pipeline = engines["legacy"].metrics, engines["pipeline"].metrics
    assert legacy.rounds == pipeline.rounds
    assert legacy.activations == pipeline.activations
    assert legacy.messages == pipeline.messages
    assert legacy.rumor_deliveries == pipeline.rumor_deliveries


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
)
def test_faults_and_churn_compose_bit_identically_across_backends(graph_seed, run_seed):
    """Crash faults + Markov churn via ComposedDynamics: fast == reference.

    Every repetition rebuilds the graph, the churn schedule, and the fault
    plan deterministically, runs end-to-end on both backends, and compares
    the full trajectory signature.
    """
    results = {}
    for engine in ("reference", "fast"):
        graph = weighted_erdos_renyi(24, 0.4, seed=graph_seed)
        churn = markov_churn(graph, horizon=32, leave_prob=0.06, rejoin_prob=0.4, seed=run_seed)
        plan = FaultPlan(
            node_crashes={node: 3 for node in graph.nodes()[-4:]},
            edge_drops={frozenset(graph.edge_list()[0].endpoints()): 5},
        )
        result = PushPullGossip(task=Task.ALL_TO_ALL).run(
            graph, seed=run_seed, engine=engine, dynamics=churn, faults=plan, max_rounds=5000
        )
        metrics = result.metrics
        results[engine] = (
            result.rounds_simulated,
            metrics.messages,
            metrics.activations,
            metrics.lost_exchanges,
            metrics.suppressed_exchanges,
            metrics.rumor_deliveries,
            sorted(metrics.edge_activations.items()),
        )
    assert results["reference"] == results["fast"]


@st.composite
def fault_plans(draw):
    nodes = st.integers(min_value=0, max_value=8)
    rounds = st.integers(min_value=0, max_value=20)
    crashes = draw(st.dictionaries(nodes, rounds, max_size=6))
    edges = st.tuples(nodes, nodes).map(frozenset)
    drops = draw(st.dictionaries(edges, rounds, max_size=6))
    return FaultPlan(node_crashes=crashes, edge_drops=drops)


@settings(max_examples=50, deadline=None)
@given(fault_plans(), fault_plans(), st.integers(min_value=0, max_value=25))
def test_merge_composes_monotonically(plan_a, plan_b, round_number):
    merged = plan_a.merge(plan_b)
    all_nodes = set(plan_a.node_crashes) | set(plan_b.node_crashes)
    for node in all_nodes:
        # A node is crashed under the merge iff it is crashed under either
        # component — merging never un-crashes and never delays a failure.
        assert merged.is_node_crashed(node, round_number) == (
            plan_a.is_node_crashed(node, round_number) or plan_b.is_node_crashed(node, round_number)
        )
    for edge in set(plan_a.edge_drops) | set(plan_b.edge_drops):
        u, v = tuple(edge) if len(edge) == 2 else (next(iter(edge)), next(iter(edge)))
        assert merged.is_edge_dropped(u, v, round_number) == (
            plan_a.is_edge_dropped(u, v, round_number) or plan_b.is_edge_dropped(u, v, round_number)
        )


@settings(max_examples=50, deadline=None)
@given(fault_plans(), fault_plans())
def test_merge_commutative_and_idempotent(plan_a, plan_b):
    ab, ba = plan_a.merge(plan_b), plan_b.merge(plan_a)
    assert ab.node_crashes == ba.node_crashes
    assert ab.edge_drops == ba.edge_drops
    self_merge = plan_a.merge(plan_a)
    assert self_merge.node_crashes == plan_a.node_crashes
    assert self_merge.edge_drops == plan_a.edge_drops
