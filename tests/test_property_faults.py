"""Property-based tests for fault injection (FaultPlan / FaultyEngine).

Invariants checked over randomized graphs, fault schedules, and policies:

* a crashed node never initiates an exchange from its crash round on;
* no exchange delivers while an endpoint is crashed or its edge is dropped
  (dropped edges may still be *activated* — the initiation is paid for —
  but they never deliver anything);
* a crashed node's knowledge is frozen from its crash round on;
* fault plans compose monotonically under ``merge`` (earliest failure wins,
  faults are never un-done, composition is commutative and idempotent).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import weighted_erdos_renyi
from repro.simulation import EventTrace, FaultPlan, FaultyEngine
from repro.simulation.rng import make_rng

MAX_ROUNDS = 12


@st.composite
def graph_and_plan(draw):
    """A small connected graph plus a random crash/drop schedule over it."""
    n = draw(st.integers(min_value=4, max_value=10))
    graph_seed = draw(st.integers(min_value=0, max_value=50))
    graph = weighted_erdos_renyi(n, 0.5, seed=graph_seed)
    nodes = graph.nodes()
    crashes = draw(
        st.dictionaries(
            st.sampled_from(nodes),
            st.integers(min_value=0, max_value=MAX_ROUNDS),
            max_size=n - 1,
        )
    )
    edges = [(edge.u, edge.v) for edge in graph.edge_list()]
    drops = draw(
        st.dictionaries(
            st.sampled_from(edges),
            st.integers(min_value=0, max_value=MAX_ROUNDS),
            max_size=len(edges),
        )
    )
    plan = FaultPlan(
        node_crashes=dict(crashes),
        edge_drops={frozenset(edge): round_number for edge, round_number in drops.items()},
    )
    policy_seed = draw(st.integers(min_value=0, max_value=50))
    return graph, plan, policy_seed


def _run_faulty(graph, plan, policy_seed):
    """Step a FaultyEngine for MAX_ROUNDS under seeded push-pull; return
    (trace, per-round origin snapshots of every node)."""
    trace = EventTrace()
    engine = FaultyEngine(graph, plan, trace=trace)
    engine.seed_all_rumors()
    rng = make_rng(policy_seed, "property-faults")

    def policy(view):
        return rng.choice(view.neighbors) if view.neighbors else None

    snapshots = []  # snapshots[r][node] = frozenset of known origins after round r+1
    for _ in range(MAX_ROUNDS):
        engine.step(policy)
        snapshots.append(
            {node: frozenset(engine.knowledge[node].origins()) for node in graph.nodes()}
        )
    return trace, snapshots


@settings(max_examples=25, deadline=None)
@given(graph_and_plan())
def test_crashed_nodes_never_initiate(case):
    graph, plan, policy_seed = case
    trace, _snapshots = _run_faulty(graph, plan, policy_seed)
    for event in trace.initiations():
        assert not plan.is_node_crashed(event.u, event.round), (
            f"crashed node {event.u} initiated an exchange in round {event.round}"
        )


@settings(max_examples=25, deadline=None)
@given(graph_and_plan())
def test_faulted_exchanges_never_deliver(case):
    graph, plan, policy_seed = case
    trace, _snapshots = _run_faulty(graph, plan, policy_seed)
    for event in trace.completions():
        assert not plan.is_node_crashed(event.u, event.round)
        assert not plan.is_node_crashed(event.v, event.round)
        assert not plan.is_edge_dropped(event.u, event.v, event.round), (
            f"dropped edge ({event.u}, {event.v}) delivered in round {event.round}"
        )


@settings(max_examples=25, deadline=None)
@given(graph_and_plan())
def test_crashed_nodes_knowledge_is_frozen(case):
    graph, plan, policy_seed = case
    _trace, snapshots = _run_faulty(graph, plan, policy_seed)
    for node, crash_round in plan.node_crashes.items():
        # snapshots[r] is the state after round r+1; from the crash round on
        # the node's origin set must never change again.
        frozen = [snapshots[r][node] for r in range(MAX_ROUNDS) if (r + 1) >= crash_round]
        assert all(state == frozen[0] for state in frozen), (
            f"node {node} (crashed at round {crash_round}) kept learning"
        )


@st.composite
def fault_plans(draw):
    nodes = st.integers(min_value=0, max_value=8)
    rounds = st.integers(min_value=0, max_value=20)
    crashes = draw(st.dictionaries(nodes, rounds, max_size=6))
    edges = st.tuples(nodes, nodes).map(frozenset)
    drops = draw(st.dictionaries(edges, rounds, max_size=6))
    return FaultPlan(node_crashes=crashes, edge_drops=drops)


@settings(max_examples=50, deadline=None)
@given(fault_plans(), fault_plans(), st.integers(min_value=0, max_value=25))
def test_merge_composes_monotonically(plan_a, plan_b, round_number):
    merged = plan_a.merge(plan_b)
    all_nodes = set(plan_a.node_crashes) | set(plan_b.node_crashes)
    for node in all_nodes:
        # A node is crashed under the merge iff it is crashed under either
        # component — merging never un-crashes and never delays a failure.
        assert merged.is_node_crashed(node, round_number) == (
            plan_a.is_node_crashed(node, round_number) or plan_b.is_node_crashed(node, round_number)
        )
    for edge in set(plan_a.edge_drops) | set(plan_b.edge_drops):
        u, v = tuple(edge) if len(edge) == 2 else (next(iter(edge)), next(iter(edge)))
        assert merged.is_edge_dropped(u, v, round_number) == (
            plan_a.is_edge_dropped(u, v, round_number) or plan_b.is_edge_dropped(u, v, round_number)
        )


@settings(max_examples=50, deadline=None)
@given(fault_plans(), fault_plans())
def test_merge_commutative_and_idempotent(plan_a, plan_b):
    ab, ba = plan_a.merge(plan_b), plan_b.merge(plan_a)
    assert ab.node_crashes == ba.node_crashes
    assert ab.edge_drops == ba.edge_drops
    self_merge = plan_a.merge(plan_a)
    assert self_merge.node_crashes == plan_a.node_crashes
    assert self_merge.edge_drops == plan_a.edge_drops
