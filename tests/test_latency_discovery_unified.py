"""Unit tests for latency discovery (Section 5.2) and the unified strategy (Section 6)."""

from __future__ import annotations

import pytest

from repro.gossip import UnifiedGossip, discover_latencies
from repro.graphs import (
    GraphError,
    WeightedGraph,
    clique,
    two_cluster_slow_bridge,
    weighted_diameter,
    weighted_erdos_renyi,
)


class TestLatencyDiscovery:
    def test_discovers_all_latencies_within_horizon(self, slow_bridge):
        result = discover_latencies(slow_bridge, known_diameter=int(weighted_diameter(slow_bridge)))
        for node in slow_bridge.nodes():
            for neighbor, latency in slow_bridge.neighbor_latencies(node).items():
                assert result.latencies[node][neighbor] == latency

    def test_bridge_probe_timeout_explicit(self):
        graph = two_cluster_slow_bridge(3, fast_latency=1, slow_latency=50, bridges=1)
        result = discover_latencies(graph, known_diameter=5, known_max_degree=graph.max_degree())
        # left cluster = {0, 1, 2}; right cluster = {3, 4, 5}; bridge = (0, 3).
        assert result.latencies[0][1] == 1
        assert result.latencies[0][2] == 1
        assert result.latencies[0][3] is None

    def test_cost_known_parameters(self):
        graph = clique(10)
        result = discover_latencies(graph, known_diameter=1, known_max_degree=9)
        assert result.time == pytest.approx(9 + 1)

    def test_cost_unknown_parameters_doubles(self):
        graph = clique(10)
        known = discover_latencies(graph, known_diameter=1, known_max_degree=9)
        unknown = discover_latencies(graph)
        assert unknown.time == pytest.approx(2 * 9 + 2 * 1)
        assert unknown.time > known.time

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            discover_latencies(WeightedGraph())


class TestUnifiedGossip:
    def test_completes_and_reports_winner(self):
        graph = weighted_erdos_renyi(16, 0.3, seed=1)
        result = UnifiedGossip().run(graph, seed=1)
        assert result.complete
        assert result.details["winner"] in {"push-pull", "spanner"}
        assert result.time == pytest.approx(
            min(result.details["push_pull_time"], result.details["spanner_time"])
        )

    def test_push_pull_wins_on_well_connected_graph(self):
        # On a unit-latency clique, push-pull finishes in O(log n) while the
        # spanner path pays at least the discovery + DTG overhead.
        graph = clique(16)
        result = UnifiedGossip().run(graph, seed=2)
        assert result.details["winner"] == "push-pull"

    def test_known_latencies_skip_discovery(self):
        graph = weighted_erdos_renyi(14, 0.3, seed=3)
        diameter = int(weighted_diameter(graph))
        unknown = UnifiedGossip(latencies_known=False, diameter=diameter).run(graph, seed=3)
        known = UnifiedGossip(latencies_known=True, diameter=diameter).run(graph, seed=3)
        assert known.details["spanner_time"] <= unknown.details["spanner_time"]

    def test_unified_never_slower_than_both_branches(self):
        graph = weighted_erdos_renyi(12, 0.35, seed=4)
        result = UnifiedGossip().run(graph, seed=4)
        assert result.time <= result.details["push_pull_time"]
        assert result.time <= result.details["spanner_time"]
