"""Tests for ABC-SMC scenario calibration (repro.analysis.calibrate).

Four layers:

* **Synthetic recovery** — generate a target curve from a known
  ScenarioSpec, run a small ABC-SMC fit, and assert every true parameter
  lands inside the posterior's central 90% credible interval.
* **Determinism regressions** — two fits with the same base seed produce
  identical particle populations, serial vs ``workers=2``, and across
  full and partial JSONL checkpoint resumes.
* **Seed-label pinning** — the ``("abc", ...)`` derive_seed scheme is a
  compatibility contract; these tests fail if a refactor reshuffles the
  particle RNG streams.
* **Hypothesis properties** — distance functions are non-negative,
  symmetric, and zero on identical curves; the perturbation kernel keeps
  particles inside prior support; importance weights normalize to 1.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.calibrate import (
    DISTANCES,
    CalibrationConfig,
    CalibrationError,
    ParamPrior,
    align_curves,
    calibrate,
    curve_rmse,
    kernel_scales,
    mean_curve,
    normalize_weights,
    observed_seed,
    particle_seed,
    perturb_within,
    quantile_time_distance,
    quantile_times,
    simulated_mean_curve,
    simulation_seed,
    weighted_quantile,
)
from repro.scenario import (
    DynamicsSpec,
    FaultSpec,
    GraphSpec,
    ScenarioError,
    ScenarioSpec,
)
from repro.simulation.rng import derive_seed, make_numpy_rng

BASE_SPEC = ScenarioSpec(
    name="calibrate-test",
    algorithm="push-pull",
    task="one-to-all",
    graph=GraphSpec(family="erdos-renyi", n=32, latency="unit"),
    seed=11,
    max_rounds=64,
    dynamics=(DynamicsSpec(kind="markov-churn", rate=0.08, horizon=64),),
    faults=FaultSpec(crash_fraction=0.3, crash_round=2),
).validate()

PRIORS = (
    ParamPrior("dynamics.0.rate", 0.0, 0.3),
    ParamPrior("faults.crash_fraction", 0.0, 0.6),
)

CONFIG = CalibrationConfig(particles=12, generations=3, reps=6, max_attempts=10)

BASE_SEED = 5


def _populations(result):
    """Everything the fit's populations consist of, for exact comparison."""
    return [
        (g.epsilon, g.thetas, g.distances, g.weights, g.attempts, g.accepted)
        for g in result.generations
    ]


@pytest.fixture(scope="module")
def serial_fit():
    """One reference fit shared by the recovery and determinism tests."""
    return calibrate(BASE_SPEC, PRIORS, config=CONFIG, base_seed=BASE_SEED)


class TestSyntheticRecovery:
    def test_true_parameters_inside_posterior_90(self, serial_fit):
        # The acceptance criterion of the whole harness: a self-test fit on
        # a target generated from known parameters must recover each of
        # them within the posterior's central 90% credible interval.
        for prior in PRIORS:
            truth = float(BASE_SPEC.numeric_leaf(prior.path))
            low, high = serial_fit.interval(prior.path, mass=0.9)
            assert low <= truth <= high, (
                f"{prior.path}: true {truth} outside posterior 90% [{low}, {high}]"
            )

    def test_epsilon_schedule_shrinks(self, serial_fit):
        epsilons = [g.epsilon for g in serial_fit.generations]
        assert math.isinf(epsilons[0])
        finite = epsilons[1:]
        assert all(math.isfinite(eps) for eps in finite)
        assert finite == sorted(finite, reverse=True)

    def test_posterior_weights_normalize(self, serial_fit):
        for generation in serial_fit.generations:
            assert all(w >= 0 for w in generation.weights)
            assert math.isclose(sum(generation.weights), 1.0, rel_tol=1e-9)

    def test_posterior_summary_and_table(self, serial_fit):
        summary = {row["parameter"]: row for row in serial_fit.posterior_summary()}
        assert set(summary) == {p.path for p in PRIORS}
        for row in summary.values():
            assert row["q05"] <= row["median"] <= row["q95"]
            assert row["stdev"] >= 0
        true_values = {p.path: BASE_SPEC.numeric_leaf(p.path) for p in PRIORS}
        table = serial_fit.summary_table(true_values)
        assert len(table.rows) == len(PRIORS)
        assert all(row["in90"] for row in table.rows)
        assert any("epsilon" in note for note in table.notes)

    def test_total_simulations_counts_every_attempt(self, serial_fit):
        assert serial_fit.total_simulations == sum(
            g.simulations for g in serial_fit.generations
        )
        # Generation 0 accepts first-completing prior draws; this scenario
        # always completes, so it spends exactly one simulation each.
        assert serial_fit.generations[0].simulations == CONFIG.particles

    def test_self_test_observed_curve_matches_spec(self, serial_fit):
        expected = simulated_mean_curve(
            BASE_SPEC, {}, observed_seed(BASE_SEED), CONFIG.reps
        )
        assert serial_fit.observed == [float(v) for v in expected]


class TestDeterminism:
    def test_same_seed_identical_populations(self, serial_fit):
        again = calibrate(BASE_SPEC, PRIORS, config=CONFIG, base_seed=BASE_SEED)
        assert _populations(again) == _populations(serial_fit)

    def test_workers_two_matches_serial(self, serial_fit):
        parallel = calibrate(
            BASE_SPEC, PRIORS, config=replace(CONFIG, workers=2), base_seed=BASE_SEED
        )
        assert _populations(parallel) == _populations(serial_fit)

    def test_checkpoint_resume_matches_fresh(self, serial_fit, tmp_path):
        checkpointed = calibrate(
            BASE_SPEC,
            PRIORS,
            config=replace(CONFIG, checkpoint_dir=str(tmp_path)),
            base_seed=BASE_SEED,
        )
        files = sorted(os.listdir(tmp_path))
        assert len(files) == CONFIG.generations
        resumed = calibrate(
            BASE_SPEC,
            PRIORS,
            config=replace(CONFIG, checkpoint_dir=str(tmp_path), resume=True),
            base_seed=BASE_SEED,
        )
        assert _populations(checkpointed) == _populations(serial_fit)
        assert _populations(resumed) == _populations(serial_fit)

    def test_partial_checkpoint_resume_matches_fresh(self, serial_fit, tmp_path):
        calibrate(
            BASE_SPEC,
            PRIORS,
            config=replace(CONFIG, checkpoint_dir=str(tmp_path)),
            base_seed=BASE_SEED,
        )
        # Sabotage the middle generation's checkpoint: keep only half its
        # particle records, as if the fit had been killed mid-generation.
        middle = sorted(tmp_path.iterdir())[1]
        lines = middle.read_text().splitlines(keepends=True)
        middle.write_text("".join(lines[: len(lines) // 2]))
        resumed = calibrate(
            BASE_SPEC,
            PRIORS,
            config=replace(CONFIG, checkpoint_dir=str(tmp_path), resume=True),
            base_seed=BASE_SEED,
        )
        assert _populations(resumed) == _populations(serial_fit)

    def test_changed_config_never_reuses_stale_checkpoints(self, tmp_path):
        # The fit digest in the checkpoint filename keys the state: a fit
        # with a different prior must not resume another fit's particles.
        config = replace(
            CONFIG, particles=4, generations=1, checkpoint_dir=str(tmp_path), resume=True
        )
        first = calibrate(BASE_SPEC, PRIORS[:1], config=config, base_seed=BASE_SEED)
        widened = (ParamPrior(PRIORS[0].path, 0.0, 0.25),)
        second = calibrate(BASE_SPEC, widened, config=config, base_seed=BASE_SEED)
        assert len(list(tmp_path.iterdir())) == 2
        assert _populations(first) != _populations(second)


class TestSeedLabels:
    """The ("abc", ...) derive_seed scheme is a compatibility contract."""

    def test_observed_label(self):
        assert observed_seed(5) == derive_seed(5, "abc", "observed")

    def test_particle_label(self):
        assert particle_seed(5, 2, 7) == derive_seed(5, "abc", 2, 7)

    def test_simulation_label(self):
        assert simulation_seed(5, 2, 7, 3) == derive_seed(5, "abc", 2, 7, "sim", 3)

    def test_labels_distinct_across_axes(self):
        seeds = {
            observed_seed(5),
            particle_seed(5, 0, 0),
            particle_seed(5, 0, 1),
            particle_seed(5, 1, 0),
            simulation_seed(5, 0, 0, 0),
            simulation_seed(5, 0, 0, 1),
        }
        assert len(seeds) == 6

    def test_generation_zero_draws_come_from_particle_stream(self, serial_fit):
        # Replay particle 3's generation-0 draw with its pinned stream: the
        # fit's stored theta must be exactly the prior samples from
        # make_numpy_rng(base_seed, "abc", 0, 3).
        rng = make_numpy_rng(BASE_SEED, "abc", 0, 3)
        expected = {prior.path: prior.sample(rng) for prior in PRIORS}
        assert serial_fit.generations[0].thetas[3] == expected


class TestPriorAndPrimitiveUnits:
    def test_prior_validation_errors_name_the_path(self):
        with pytest.raises(CalibrationError, match="low < high"):
            ParamPrior("graph.n", 5, 5).validate()
        with pytest.raises(CalibrationError, match="log-uniform"):
            ParamPrior("graph.n", 0.0, 1.0, kind="log-uniform").validate()
        with pytest.raises(CalibrationError, match="kind"):
            ParamPrior("graph.n", 0.0, 1.0, kind="gaussian").validate()
        with pytest.raises(CalibrationError, match="no integer"):
            ParamPrior("graph.n", 2.2, 2.8, integer=True).validate()

    def test_integer_prior_samples_integers(self):
        prior = ParamPrior("forget_after", 1, 9, integer=True).validate()
        rng = make_numpy_rng(0, "test")
        draws = [prior.sample(rng) for _ in range(64)]
        assert all(isinstance(d, int) and 1 <= d <= 9 for d in draws)
        assert len(set(draws)) > 3

    def test_log_uniform_pdf_integrates_like_reciprocal(self):
        prior = ParamPrior("dynamics.0.rate", 0.01, 1.0, kind="log-uniform").validate()
        assert prior.pdf(0.005) == 0.0
        assert prior.pdf(0.1) == pytest.approx(
            1.0 / (0.1 * math.log(100.0))
        )

    def test_quantile_times_censors_unreached_quantiles(self):
        times = quantile_times([1, 2, 3], quantiles=(0.5, 1.0), total=10.0)
        assert list(times) == [3.0, 3.0]

    def test_align_curves_pads_with_final_value(self):
        a, b = align_curves([1, 4], [1, 2, 3, 5])
        assert list(a) == [1, 4, 4, 4]
        assert list(b) == [1, 2, 3, 5]

    def test_weighted_quantile_brackets_support(self):
        values = [1.0, 2.0, 3.0]
        weights = [0.2, 0.5, 0.3]
        assert weighted_quantile(values, weights, 0.0) <= 1.0
        assert weighted_quantile(values, weights, 1.0) == 3.0
        assert 1.0 <= weighted_quantile(values, weights, 0.5) <= 3.0

    def test_kernel_scales_fall_back_on_degenerate_population(self):
        priors = (ParamPrior("graph.n", 0.0, 10.0),)
        thetas_t = np.asarray([[4.0], [4.0], [4.0]])
        scales = kernel_scales(thetas_t, [1.0, 1.0, 1.0], priors)
        assert scales[0] == pytest.approx(0.1)

    def test_config_validation(self):
        with pytest.raises(CalibrationError, match="particles"):
            CalibrationConfig(particles=1).validate()
        with pytest.raises(CalibrationError, match="distance"):
            CalibrationConfig(distance="cosine").validate()
        with pytest.raises(CalibrationError, match="epsilon_quantile"):
            CalibrationConfig(epsilon_quantile=1.0).validate()
        with pytest.raises(CalibrationError, match="resume"):
            CalibrationConfig(resume=True).validate()


class TestCalibrateValidation:
    def test_rejects_all_to_all_base(self):
        spec = ScenarioSpec(name="a2a", algorithm="push-pull", task="all-to-all").validate()
        with pytest.raises(CalibrationError, match="one-to-all"):
            calibrate(spec, PRIORS, config=CONFIG)

    def test_rejects_unknown_prior_path_naming_it(self):
        bad = (ParamPrior("graph.family", 0.0, 1.0),)
        with pytest.raises(ScenarioError, match="graph.family"):
            calibrate(BASE_SPEC, bad, config=CONFIG)

    def test_rejects_duplicate_and_empty_priors(self):
        with pytest.raises(CalibrationError, match="duplicate"):
            calibrate(BASE_SPEC, (PRIORS[0], PRIORS[0]), config=CONFIG)
        with pytest.raises(CalibrationError, match="at least one"):
            calibrate(BASE_SPEC, (), config=CONFIG)

    def test_rejects_non_replicable_algorithm_base(self):
        spec = ScenarioSpec(name="span", algorithm="spanner", task="all-to-all").validate()
        with pytest.raises(CalibrationError, match="one-to-all"):
            calibrate(spec, PRIORS, config=CONFIG)

    def test_rejects_bad_observed_curve(self):
        with pytest.raises(CalibrationError, match="observed"):
            calibrate(BASE_SPEC, PRIORS, observed=[], config=CONFIG)
        with pytest.raises(CalibrationError, match="observed"):
            calibrate(BASE_SPEC, PRIORS, observed=[1.0, -2.0], config=CONFIG)

    def test_interval_rejects_unfitted_path(self, serial_fit):
        with pytest.raises(CalibrationError, match="graph.n"):
            serial_fit.interval("graph.n")

    def test_non_completing_candidates_are_rejected_not_fatal(self):
        # A spec whose max_rounds is far too small for some candidates:
        # those simulations must count as infinite-distance proposals, not
        # crash the fit.
        curve = simulated_mean_curve(BASE_SPEC, {}, observed_seed(1), 4)
        tight = BASE_SPEC.patched({"max_rounds": 6, "name": "tight"})
        assert simulated_mean_curve(tight, {"dynamics.0.rate": 0.3}, 123, 4) is None
        result = calibrate(
            tight,
            PRIORS,
            observed=list(curve),
            config=CalibrationConfig(
                particles=4, generations=2, reps=4, max_attempts=4
            ),
            base_seed=2,
        )
        assert len(result.generations) == 2


# ----------------------------------------------------------------------
# Hypothesis properties for the calibration primitives
# ----------------------------------------------------------------------
curves = st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=40
)

uniform_priors = st.builds(
    lambda low, width, integer: ParamPrior(
        "graph.n", low, low + width, integer=integer
    ),
    low=st.floats(min_value=-50, max_value=50, allow_nan=False),
    width=st.floats(min_value=2.0, max_value=100.0, allow_nan=False),
    integer=st.booleans(),
)

log_priors = st.builds(
    lambda low, factor: ParamPrior(
        "graph.n", low, low * factor, kind="log-uniform"
    ),
    low=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
    factor=st.floats(min_value=1.5, max_value=1000.0, allow_nan=False),
)

any_priors = st.one_of(uniform_priors, log_priors)


class TestDistanceProperties:
    @settings(max_examples=60, deadline=None)
    @given(a=curves, b=curves)
    def test_distances_non_negative_and_symmetric(self, a, b):
        for distance in DISTANCES.values():
            assert distance(a, b) >= 0.0
            assert distance(a, b) == pytest.approx(distance(b, a))

    @settings(max_examples=60, deadline=None)
    @given(a=curves)
    def test_distances_zero_on_identical_curves(self, a):
        for distance in DISTANCES.values():
            assert distance(a, a) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(a=curves, b=curves)
    def test_l2_detects_any_padded_pointwise_difference(self, a, b):
        padded_a, padded_b = align_curves(a, b)
        if list(padded_a) != list(padded_b):
            assert curve_rmse(a, b) > 0.0
        else:
            assert curve_rmse(a, b) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(group=st.lists(curves, min_size=1, max_size=5))
    def test_mean_curve_bounded_by_member_extremes(self, group):
        mean = mean_curve(group)
        assert mean.size == max(len(curve) for curve in group)
        padded = [align_curves(curve, list(mean))[0] for curve in group]
        assert np.all(mean >= np.min(padded, axis=0) - 1e-9)
        assert np.all(mean <= np.max(padded, axis=0) + 1e-9)


class TestKernelProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        prior=any_priors,
        position=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        scale=st.floats(min_value=1e-6, max_value=100.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_perturbation_stays_inside_prior_support(self, prior, position, scale, seed):
        prior.validate()
        start = prior.clip(prior.low + position * (prior.high - prior.low))
        rng = make_numpy_rng(seed, "perturb-test")
        value = perturb_within(prior, start, scale, rng)
        assert prior.contains(value)
        if prior.integer:
            assert isinstance(value, int)

    @settings(max_examples=80, deadline=None)
    @given(
        raw=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=32,
        ).filter(lambda values: sum(values) > 0)
    )
    def test_weights_normalize_to_one(self, raw):
        normalized = normalize_weights(raw)
        assert math.isclose(float(normalized.sum()), 1.0, rel_tol=1e-9)
        assert np.all(normalized >= 0.0)

    def test_weights_reject_degenerate_populations(self):
        with pytest.raises(CalibrationError):
            normalize_weights([0.0, 0.0])
        with pytest.raises(CalibrationError):
            normalize_weights([1.0, -0.5])
        with pytest.raises(CalibrationError):
            normalize_weights([])

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=16,
        ),
        q=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_weighted_quantile_inside_value_range(self, values, q, seed):
        rng = make_numpy_rng(seed, "wq-test")
        weights = rng.uniform(0.1, 1.0, size=len(values))
        result = weighted_quantile(values, weights, q)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9
