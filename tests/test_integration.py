"""Integration tests: cross-module workflows mirroring the paper's claims.

These tests exercise entire pipelines (graph generation → conductance →
algorithm → bound comparison) at a small scale; the benchmarks repeat the
same pipelines with larger sweeps.
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    check_theorem5,
    extract_parameters,
    lower_bound_dissemination,
    upper_bound_push_pull,
    upper_bound_spanner_broadcast,
)
from repro.gossip import (
    FloodingGossip,
    PatternBroadcast,
    PushPullGossip,
    SpannerBroadcast,
    Task,
    UnifiedGossip,
    run_push_pull,
)
from repro.graphs import (
    clique,
    theorem9_network,
    theorem10_network,
    theorem13_ring_network,
    two_cluster_slow_bridge,
    weighted_diameter,
    weighted_erdos_renyi,
)
from repro.guessing_game import run_gossip_reduction


class TestAlgorithmsAgreeOnCompletion:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_algorithms_complete_all_to_all(self, seed):
        graph = weighted_erdos_renyi(14, 0.35, seed=seed)
        diameter = int(weighted_diameter(graph))
        algorithms = [
            PushPullGossip(task=Task.ALL_TO_ALL),
            FloodingGossip(task=Task.ALL_TO_ALL),
            SpannerBroadcast(diameter=diameter),
            PatternBroadcast(diameter=diameter),
            UnifiedGossip(diameter=diameter),
        ]
        for algorithm in algorithms:
            result = algorithm.run(graph, seed=seed)
            assert result.complete, f"{algorithm.name} failed to complete"
            assert result.time > 0


class TestBoundsBracketMeasurements:
    def test_push_pull_within_theorem29_shape(self):
        graph = weighted_erdos_renyi(16, 0.35, seed=5)
        params = extract_parameters(graph, seed=5)
        result = run_push_pull(graph, source=graph.nodes()[0], seed=5)
        # Theorem 29 is an upper bound: measured <= c * (ell*/phi*) log n.
        assert result.time <= 5 * upper_bound_push_pull(params) + 5

    def test_measured_time_exceeds_lower_bound_shape(self):
        # The Theorem 13 ring forces Omega(min(D + Delta, ell/phi)).
        graph, info = theorem13_ring_network(24, alpha=0.25, ell=8, seed=1)
        params = extract_parameters(graph, seed=1)
        result = PushPullGossip(task=Task.ALL_TO_ALL).run(graph, seed=1)
        bound = lower_bound_dissemination(params)
        # The constant in front of the lower bound is below 1 for push-pull at
        # this scale; we only require that the measurement is not *far below*.
        assert result.time >= bound / 4

    def test_spanner_broadcast_within_theorem25_shape(self):
        graph = weighted_erdos_renyi(16, 0.3, seed=6)
        diameter = int(weighted_diameter(graph))
        params = extract_parameters(graph, seed=6)
        result = SpannerBroadcast(diameter=diameter).run(graph, seed=6)
        assert result.time <= 40 * upper_bound_spanner_broadcast(params)


class TestGadgetsSlowDownGossip:
    def test_theorem9_gadget_is_slower_than_plain_expander(self):
        # Local broadcast on the Theorem 9 network needs Ω(Δ) rounds while the
        # weighted diameter stays small.
        delta = 12
        graph, info = theorem9_network(n=2 * delta, delta=delta, seed=2)
        reduction = run_gossip_reduction(graph, info, seed=2)
        assert reduction.gossip_rounds >= delta / 4

    def test_theorem10_gadget_scales_with_inverse_phi(self):
        fast = theorem10_network(n=12, phi=0.5, ell=1, seed=3)
        sparse = theorem10_network(n=12, phi=0.05, ell=1, seed=3)
        fast_rounds = run_gossip_reduction(*fast, seed=3).gossip_rounds
        sparse_rounds = run_gossip_reduction(*sparse, seed=3).gossip_rounds
        assert sparse_rounds > fast_rounds

    def test_theorem5_on_every_gadget_family(self):
        small_bridge = two_cluster_slow_bridge(4, slow_latency=32)
        report = check_theorem5(small_bridge)
        assert report.holds()

    def test_conductance_of_ring_matches_construction(self):
        graph, info = theorem13_ring_network(24, alpha=0.25, ell=8, seed=4)
        params = extract_parameters(graph, seed=4)
        # The construction promises phi* = Theta(alpha) and D = Theta(1/alpha).
        assert params.phi_star == pytest.approx(info.alpha, rel=2.0)
        assert params.diameter <= 4 / info.alpha


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self):
        def pipeline(seed: int) -> float:
            graph = weighted_erdos_renyi(16, 0.3, seed=seed)
            result = UnifiedGossip().run(graph, seed=seed)
            return result.time

        assert pipeline(11) == pipeline(11)

    def test_different_seeds_differ_somewhere(self):
        graph = weighted_erdos_renyi(16, 0.3, seed=1)
        times = {run_push_pull(graph, source=0, seed=s).time for s in range(6)}
        assert len(times) > 1
