"""Unit tests for the gossip simulation engine (repro.simulation)."""

from __future__ import annotations

import pytest

from repro.graphs import GraphError, WeightedGraph, clique, path_graph
from repro.simulation import EventTrace, GossipEngine, KnowledgeState, Rumor


@pytest.fixture
def two_node_slow() -> WeightedGraph:
    graph = WeightedGraph(range(2))
    graph.add_edge(0, 1, 5)
    return graph


class TestSeeding:
    def test_seed_rumor(self, small_clique):
        engine = GossipEngine(small_clique)
        rumor = engine.seed_rumor(0, payload="hello")
        assert engine.knowledge[0].knows(rumor)
        assert not engine.knowledge[1].knows(rumor)

    def test_seed_rumor_unknown_node(self, small_clique):
        engine = GossipEngine(small_clique)
        with pytest.raises(GraphError):
            engine.seed_rumor(99)

    def test_seed_all(self, small_clique):
        engine = GossipEngine(small_clique)
        rumors = engine.seed_all_rumors()
        assert len(rumors) == 6
        assert all(engine.knowledge[node].knows(rumor) for node, rumor in rumors.items())

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            GossipEngine(WeightedGraph())


class TestLatencySemantics:
    def test_exchange_takes_latency_rounds(self, two_node_slow):
        engine = GossipEngine(two_node_slow)
        rumor = engine.seed_rumor(0)
        engine.round = 0
        engine.initiate_exchange(0, 1)
        # Deliveries happen at the start of round latency (5) or later.
        for _ in range(4):
            engine.step(lambda view: None)
            assert not engine.knowledge[1].knows(rumor)
        engine.step(lambda view: None)
        assert engine.knowledge[1].knows(rumor)

    def test_exchange_is_bidirectional(self, two_node_slow):
        engine = GossipEngine(two_node_slow)
        rumor_a = engine.seed_rumor(0)
        rumor_b = engine.seed_rumor(1)
        engine.initiate_exchange(0, 1)
        for _ in range(6):
            engine.step(lambda view: None)
        assert engine.knowledge[1].knows(rumor_a)
        assert engine.knowledge[0].knows(rumor_b)

    def test_unit_latency_delivers_next_round(self):
        graph = path_graph(2)
        engine = GossipEngine(graph)
        rumor = engine.seed_rumor(0)
        engine.initiate_exchange(0, 1)
        engine.step(lambda view: None)
        assert engine.knowledge[1].knows(rumor)

    def test_non_edge_exchange_rejected(self):
        graph = path_graph(3)
        engine = GossipEngine(graph)
        with pytest.raises(GraphError):
            engine.initiate_exchange(0, 2)

    def test_policy_choosing_non_neighbor_rejected(self):
        graph = path_graph(3)
        engine = GossipEngine(graph)
        with pytest.raises(GraphError):
            engine.step(lambda view: 2 if view.node == 0 else None)


class TestBlockingMode:
    def test_blocking_node_skips_turn(self, two_node_slow):
        engine = GossipEngine(two_node_slow, blocking=True)
        engine.seed_rumor(0)
        choices: list[int] = []

        def policy(view):
            if view.node == 0:
                choices.append(view.round)
                return 1
            return None

        for _ in range(6):
            engine.step(policy)
        # Node 0's exchange takes 5 rounds; in blocking mode it is consulted
        # again only after it completes, so at most 2 initiations in 6 rounds.
        assert len(choices) <= 2

    def test_non_blocking_node_initiates_every_round(self, two_node_slow):
        engine = GossipEngine(two_node_slow, blocking=False)
        engine.seed_rumor(0)
        count = 0

        def policy(view):
            nonlocal count
            if view.node == 0:
                count += 1
                return 1
            return None

        for _ in range(6):
            engine.step(policy)
        assert count == 6


class TestCompletionConditions:
    def test_dissemination_complete(self, small_clique):
        engine = GossipEngine(small_clique)
        rumor = engine.seed_rumor(0)
        assert not engine.dissemination_complete(rumor)
        metrics = engine.run(
            lambda view: view.neighbors[view.round % len(view.neighbors)],
            stop_condition=lambda eng: eng.dissemination_complete(rumor),
            max_rounds=100,
        )
        assert engine.dissemination_complete(rumor)
        assert metrics.completion_time is not None

    def test_all_to_all_complete(self, small_clique):
        engine = GossipEngine(small_clique)
        engine.seed_all_rumors()
        engine.run(
            lambda view: view.neighbors[view.round % len(view.neighbors)],
            stop_condition=lambda eng: eng.all_to_all_complete(),
            max_rounds=200,
        )
        assert engine.all_to_all_complete()

    def test_local_broadcast_complete(self):
        graph = path_graph(4)
        engine = GossipEngine(graph)
        engine.seed_all_rumors()
        assert not engine.local_broadcast_complete()
        engine.run(
            lambda view: view.neighbors[view.round % len(view.neighbors)],
            stop_condition=lambda eng: eng.local_broadcast_complete(),
            max_rounds=50,
        )
        assert engine.local_broadcast_complete()

    def test_run_raises_when_cap_hit(self, small_clique):
        engine = GossipEngine(small_clique)
        rumor = engine.seed_rumor(0)
        with pytest.raises(RuntimeError):
            engine.run(lambda view: None, stop_condition=lambda eng: eng.dissemination_complete(rumor), max_rounds=5)

    def test_immediate_stop_condition(self, small_clique):
        engine = GossipEngine(small_clique)
        metrics = engine.run(lambda view: None, stop_condition=lambda eng: True, max_rounds=5)
        assert metrics.completion_time == 0


class TestMetricsAndTrace:
    def test_metrics_counters(self, small_clique):
        engine = GossipEngine(small_clique)
        engine.seed_all_rumors()
        engine.run(
            lambda view: view.neighbors[0],
            stop_condition=lambda eng: eng.all_to_all_complete(),
            max_rounds=100,
        )
        metrics = engine.metrics
        assert metrics.activations > 0
        assert metrics.messages <= 2 * metrics.activations
        assert metrics.messages % 2 == 0
        assert metrics.rumor_deliveries > 0
        assert metrics.as_dict()["time"] == metrics.total_time

    def test_trace_records_events(self, small_clique):
        trace = EventTrace()
        engine = GossipEngine(small_clique, trace=trace)
        engine.seed_rumor(0)
        engine.step(lambda view: view.neighbors[0])
        engine.step(lambda view: None)
        assert len(trace.initiations()) == 6
        assert len(trace.completions()) == 6
        assert trace.initiations()[0].round == 1

    def test_node_view_reports_busy(self, two_node_slow):
        engine = GossipEngine(two_node_slow)
        engine.initiate_exchange(0, 1)
        assert engine.node_view(0).busy
        assert not engine.node_view(1).busy
