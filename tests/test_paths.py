"""Unit tests for repro.graphs.paths."""

from __future__ import annotations

import math

import pytest

from repro.graphs import (
    GraphError,
    WeightedGraph,
    all_pairs_weighted_distances,
    clique,
    dijkstra,
    dijkstra_with_paths,
    hop_diameter,
    hop_distances,
    nodes_within_distance,
    path_graph,
    shortest_path,
    weighted_diameter,
    weighted_distance,
    weighted_eccentricity,
    weighted_radius,
)


@pytest.fixture
def detour_graph() -> WeightedGraph:
    """A graph where the direct edge is slower than the two-hop detour."""
    graph = WeightedGraph(range(3))
    graph.add_edge(0, 2, 10)
    graph.add_edge(0, 1, 1)
    graph.add_edge(1, 2, 1)
    return graph


class TestDijkstra:
    def test_prefers_multi_hop_fast_path(self, detour_graph):
        dist = dijkstra(detour_graph, 0)
        assert dist[2] == 2

    def test_distances_on_path(self):
        graph = path_graph(5)
        dist = dijkstra(graph, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_nodes_absent(self):
        graph = WeightedGraph(range(3))
        graph.add_edge(0, 1, 1)
        dist = dijkstra(graph, 0)
        assert 2 not in dist

    def test_missing_source_raises(self):
        with pytest.raises(GraphError):
            dijkstra(WeightedGraph(range(2)), 9)

    def test_predecessors_reconstruct_path(self, detour_graph):
        dist, pred = dijkstra_with_paths(detour_graph, 0)
        assert dist[2] == 2
        assert pred[2] == 1
        assert pred[1] == 0
        assert pred[0] is None


class TestShortestPath:
    def test_path_nodes(self, detour_graph):
        assert shortest_path(detour_graph, 0, 2) == [0, 1, 2]

    def test_unreachable_target_raises(self):
        graph = WeightedGraph(range(3))
        graph.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            shortest_path(graph, 0, 2)

    def test_weighted_distance(self, detour_graph):
        assert weighted_distance(detour_graph, 0, 2) == 2
        assert weighted_distance(detour_graph, 2, 0) == 2


class TestDiameter:
    def test_path_diameter(self):
        graph = path_graph(6)
        assert weighted_diameter(graph) == 5
        assert hop_diameter(graph) == 5

    def test_weighted_vs_hop_diameter_differ(self, detour_graph):
        assert hop_diameter(detour_graph) == 1
        assert weighted_diameter(detour_graph) == 2

    def test_clique_diameter(self):
        assert weighted_diameter(clique(5)) == 1

    def test_disconnected_graph_is_infinite(self):
        graph = WeightedGraph(range(3))
        graph.add_edge(0, 1, 1)
        assert math.isinf(weighted_diameter(graph))
        assert math.isinf(hop_diameter(graph))

    def test_sampled_diameter_is_lower_bound(self):
        graph = path_graph(30)
        sampled = weighted_diameter(graph, sample=5)
        assert sampled <= 29
        assert sampled >= 15  # stride sampling still reaches far nodes

    def test_radius_and_eccentricity(self):
        graph = path_graph(5)
        assert weighted_eccentricity(graph, 2) == 2
        assert weighted_eccentricity(graph, 0) == 4
        assert weighted_radius(graph) == 2

    def test_empty_graph_diameter_zero(self):
        assert weighted_diameter(WeightedGraph()) == 0.0


class TestHopAndNeighbourhood:
    def test_hop_distances(self, detour_graph):
        assert hop_distances(detour_graph, 0) == {0: 0, 1: 1, 2: 1}

    def test_nodes_within_distance(self, detour_graph):
        assert nodes_within_distance(detour_graph, 0, 1) == {0, 1}
        assert nodes_within_distance(detour_graph, 0, 2) == {0, 1, 2}

    def test_all_pairs(self):
        graph = path_graph(4)
        table = all_pairs_weighted_distances(graph)
        assert table[0][3] == 3
        assert table[3][0] == 3
        assert len(table) == 4
