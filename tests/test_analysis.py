"""Unit tests for the analysis harness (stats, records, tables, plotting, experiment)."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analysis import (
    Experiment,
    TrialOutcome,
    ResultTable,
    ascii_scatter,
    ascii_series,
    format_value,
    geometric_mean,
    linear_slope,
    loglog_slope,
    pearson_correlation,
    ratio_statistics,
    render_comparison,
    render_table,
    summarize,
    sweep,
)


class TestStats:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4
        assert summary.ci95_half_width > 0

    def test_summarize_single_value(self):
        summary = summarize([7.0])
        assert summary.stdev == 0.0
        assert summary.ci95_half_width == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_loglog_slope_detects_linear(self):
        x = [10, 20, 40, 80]
        y = [3 * v for v in x]
        assert loglog_slope(x, y) == pytest.approx(1.0, abs=1e-9)

    def test_loglog_slope_detects_quadratic(self):
        x = [2, 4, 8, 16]
        y = [v ** 2 for v in x]
        assert loglog_slope(x, y) == pytest.approx(2.0, abs=1e-9)

    def test_loglog_slope_requires_positive_points(self):
        with pytest.raises(ValueError):
            loglog_slope([0, 0], [1, 2])

    def test_linear_slope(self):
        assert linear_slope([0, 1, 2], [1, 3, 5]) == pytest.approx(2.0)

    def test_ratio_statistics(self):
        summary = ratio_statistics([10, 20], [5, 5])
        assert summary.mean == pytest.approx(3.0)

    def test_ratio_statistics_skips_zero_bounds(self):
        summary = ratio_statistics([10, 20], [0, 10])
        assert summary.count == 1

    def test_pearson_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 10, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([-1, 0])


class TestRecordsAndTables:
    def test_result_table_accumulates_rows(self):
        table = ResultTable(title="demo")
        table.add_row(n=8, time=1.5)
        table.add_row(n=16, time=3.0, extra="x")
        assert len(table) == 2
        assert table.columns() == ["n", "time", "extra"]
        assert table.column("time") == [1.5, 3.0]
        assert table.column("extra") == [None, "x"]

    def test_result_table_csv(self):
        table = ResultTable(title="demo")
        table.add_row(n=8, time=1.5)
        csv_text = table.to_csv()
        assert "n,time" in csv_text.splitlines()[0]
        assert "8,1.5" in csv_text

    def test_render_table_contains_values_and_notes(self):
        table = ResultTable(title="demo")
        table.add_row(n=8, time=1.5)
        table.add_note("hello")
        rendered = render_table(table)
        assert "demo" in rendered
        assert "1.5" in rendered
        assert "note: hello" in rendered

    def test_render_empty_table(self):
        assert "(empty)" in render_table(ResultTable(title="empty"))

    def test_format_value_variants(self):
        assert format_value(None) == ""
        assert format_value(True) == "yes"
        assert format_value(1.0) == "1"
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value("abc") == "abc"

    def test_render_comparison_ratios(self):
        text = render_comparison("cmp", ["a", "b"], [10, 20], [5, 10])
        assert "ratio" in text
        assert "2" in text


class TestPlotting:
    def test_ascii_scatter_dimensions(self):
        plot = ascii_scatter([1, 2, 3], [1, 4, 9], width=20, height=5, title="squares")
        lines = plot.splitlines()
        assert lines[0] == "squares"
        assert len(lines) == 1 + 1 + 5 + 1 + 1
        assert any("*" in line for line in lines)

    def test_ascii_scatter_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])

    def test_ascii_series(self):
        chart = ascii_series(["a", "b"], [1.0, 2.0], width=10, title="bars")
        assert "a |" in chart
        assert "#" in chart

    def test_ascii_series_validation(self):
        with pytest.raises(ValueError):
            ascii_series([], [])


class TestExperiment:
    def test_sweep_cartesian_product(self):
        cases = sweep(n=[8, 16], phi=[0.1, 0.2, 0.3])
        assert len(cases) == 6
        assert {"n": 8, "phi": 0.3} in cases

    def test_experiment_runs_all_cases_and_aggregates(self):
        seen_seeds = []

        def trial(case, seed):
            seen_seeds.append(seed)
            return {"time": case["n"] * 1.0, "messages": 10}

        experiment = Experiment(
            name="toy",
            cases=sweep(n=[4, 8]),
            trial=trial,
            repetitions=3,
            base_seed=100,
        )
        table = experiment.run()
        assert len(table) == 2
        assert len(seen_seeds) == 6
        assert len(set(seen_seeds)) == 6  # distinct seeds per repetition and case
        row = table.rows[0]
        assert row["time"] == pytest.approx(4.0)
        assert "wall_seconds" in row.values

    def test_experiment_records_min_max_time(self):
        counter = iter(range(100))

        def trial(case, seed):
            return {"time": float(next(counter))}

        table = Experiment(name="spread", cases=[{}], trial=trial, repetitions=3).run()
        row = table.rows[0]
        assert row["time_min"] <= row["time"] <= row["time_max"]

    def test_trial_outcome_aggregate_emits_spread_for_all_keys(self):
        outcome = TrialOutcome(
            case={"n": 4},
            measurements=[
                {"time": 2.0, "messages": 10.0, "wall_seconds": 0.5},
                {"time": 4.0, "messages": 30.0, "wall_seconds": 0.9},
            ],
        )
        aggregated = outcome.aggregate()
        assert aggregated["time"] == pytest.approx(3.0)
        assert aggregated["time_min"] == 2.0
        assert aggregated["time_max"] == 4.0
        assert aggregated["time_stdev"] == pytest.approx(statistics.stdev([2.0, 4.0]))
        assert aggregated["messages"] == pytest.approx(20.0)
        assert aggregated["messages_min"] == 10.0
        assert aggregated["messages_max"] == 30.0
        assert aggregated["messages_stdev"] == pytest.approx(statistics.stdev([10.0, 30.0]))
        # Wall-clock diagnostics report only their mean — spread is noise.
        assert aggregated["wall_seconds"] == pytest.approx(0.7)
        assert "wall_seconds_min" not in aggregated
        assert "wall_seconds_stdev" not in aggregated

    def test_trial_outcome_aggregate_single_measurement_has_no_spread(self):
        outcome = TrialOutcome(case={}, measurements=[{"time": 5.0}])
        assert outcome.aggregate() == {"time": 5.0}

    def test_trial_outcome_aggregate_empty(self):
        assert TrialOutcome(case={}).aggregate() == {}
