"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    WeightedGraph,
    clique,
    cycle_graph,
    dumbbell,
    grid_graph,
    path_graph,
    star,
    two_cluster_slow_bridge,
    weighted_erdos_renyi,
)


@pytest.fixture
def triangle() -> WeightedGraph:
    """A 3-node triangle with mixed latencies."""
    graph = WeightedGraph(range(3))
    graph.add_edge(0, 1, 1)
    graph.add_edge(1, 2, 2)
    graph.add_edge(0, 2, 4)
    return graph


@pytest.fixture
def small_clique() -> WeightedGraph:
    """K6 with unit latencies."""
    return clique(6)


@pytest.fixture
def small_path() -> WeightedGraph:
    """A 6-node unit-latency path."""
    return path_graph(6)


@pytest.fixture
def small_star() -> WeightedGraph:
    """A 7-node star with unit latencies."""
    return star(7)


@pytest.fixture
def slow_bridge() -> WeightedGraph:
    """Two K5 cliques joined by a single slow (latency 16) edge."""
    return two_cluster_slow_bridge(5, fast_latency=1, slow_latency=16, bridges=1)


@pytest.fixture
def small_weighted_er() -> WeightedGraph:
    """A 24-node weighted Erdős–Rényi graph (connected, seeded)."""
    return weighted_erdos_renyi(24, 0.25, seed=7)


@pytest.fixture
def small_grid() -> WeightedGraph:
    """A 4x4 unit-latency grid."""
    return grid_graph(4, 4)
