"""Unit tests for the markdown report generator and the CLI experiment command."""

from __future__ import annotations

import sys

import pytest

from repro.analysis import ResultTable, table_to_markdown, tables_to_markdown
from repro.cli import main


class TestMarkdownReport:
    def test_single_table(self):
        table = ResultTable(title="demo")
        table.add_row(n=8, time=1.5)
        table.add_row(n=16, time=3.25)
        table.add_note("a note")
        text = table_to_markdown(table)
        assert "### demo" in text
        assert "| n | time |" in text
        assert "| 8 | 1.5 |" in text
        assert "*a note*" in text

    def test_empty_table(self):
        text = table_to_markdown(ResultTable(title="empty"))
        assert "_(no rows)_" in text

    def test_document_with_multiple_tables(self):
        a = ResultTable(title="first")
        a.add_row(x=1)
        b = ResultTable(title="second")
        b.add_row(y=2)
        document = tables_to_markdown([a, b], title="report")
        assert document.startswith("# report")
        assert "### first" in document and "### second" in document

    def test_none_cells_render_blank(self):
        table = ResultTable(title="holes")
        table.add_row(a=1, b=None)
        text = table_to_markdown(table)
        assert "| 1 |" in text


class TestCliExperimentCommand:
    def test_experiment_command_runs_quick_e14(self, capsys, monkeypatch):
        # Make sure the benchmarks package is importable from the repo root.
        monkeypatch.chdir(__file__.rsplit("/tests/", 1)[0])
        monkeypatch.syspath_prepend(__file__.rsplit("/tests/", 1)[0])
        exit_code = main(["experiment", "E14", "--quick"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "T(k) schedule" in captured

    def test_experiment_command_unknown_id(self, monkeypatch):
        monkeypatch.chdir(__file__.rsplit("/tests/", 1)[0])
        monkeypatch.syspath_prepend(__file__.rsplit("/tests/", 1)[0])
        with pytest.raises(KeyError):
            main(["experiment", "E99"])

    def test_experiment_command_workers_and_checkpoint(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(__file__.rsplit("/tests/", 1)[0])
        monkeypatch.syspath_prepend(__file__.rsplit("/tests/", 1)[0])
        exit_code = main(
            [
                "experiment",
                "E18",
                "--quick",
                "--workers",
                "2",
                "--checkpoint-dir",
                str(tmp_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "workers=2" in captured
        assert "rows_match" in captured

    def test_experiment_command_rejects_bad_workers(self, monkeypatch):
        monkeypatch.chdir(__file__.rsplit("/tests/", 1)[0])
        monkeypatch.syspath_prepend(__file__.rsplit("/tests/", 1)[0])
        with pytest.raises(SystemExit, match="--workers"):
            main(["experiment", "E18", "--quick", "--workers", "lots"])

    def test_experiment_command_resume_requires_checkpoint_dir(self, monkeypatch):
        monkeypatch.chdir(__file__.rsplit("/tests/", 1)[0])
        monkeypatch.syspath_prepend(__file__.rsplit("/tests/", 1)[0])
        with pytest.raises(SystemExit, match="--resume"):
            main(["experiment", "E18", "--quick", "--resume"])
