"""Unit tests for the Theorem 5 relation checker (repro.core.relation)."""

from __future__ import annotations

import pytest

from repro.core import check_theorem5, num_latency_classes
from repro.graphs import (
    GraphError,
    WeightedGraph,
    assign_latencies,
    bimodal_latency,
    clique,
    cycle_graph,
    path_graph,
    two_cluster_slow_bridge,
    uniform_latency,
    weighted_erdos_renyi,
)


class TestTheorem5SmallGraphs:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: clique(6),
            lambda: cycle_graph(7),
            lambda: path_graph(8),
            lambda: two_cluster_slow_bridge(4, slow_latency=16),
            lambda: assign_latencies(clique(7), uniform_latency(1, 64), seed=1),
            lambda: assign_latencies(cycle_graph(9), bimodal_latency(1, 128, 0.4), seed=2),
        ],
    )
    def test_sandwich_holds_exactly(self, graph_builder):
        report = check_theorem5(graph_builder())
        assert report.exact
        assert report.holds(), (
            f"Theorem 5 violated: lower={report.lower}, phi_avg={report.phi_avg}, upper={report.upper}"
        )

    def test_unit_latency_graph_values(self):
        report = check_theorem5(clique(6))
        # With unit latencies phi* equals the classical conductance and
        # phi_avg equals exactly half of it, so phi_avg sits at the lower end.
        assert report.ell_star == 1
        assert report.phi_avg == pytest.approx(report.phi_star / 2)
        assert report.lower == pytest.approx(report.phi_avg)

    def test_upper_bound_chain(self, slow_bridge):
        report = check_theorem5(slow_bridge)
        assert report.upper <= report.loose_upper + 1e-12
        assert report.nonempty_classes <= num_latency_classes(report.max_latency)

    def test_position_in_interval(self, slow_bridge):
        report = check_theorem5(slow_bridge)
        position = report.position()
        assert 0.0 <= position <= 1.0

    def test_as_dict_round_trip(self, slow_bridge):
        data = check_theorem5(slow_bridge).as_dict()
        assert data["holds"] == 1.0
        assert data["lower_holds"] == 1.0
        assert data["phi_star"] > 0

    def test_known_counterexample_to_claimed_upper_bound(self):
        # Reproduction finding: on this 12-node bimodal instance the paper's
        # claimed upper bound L*phi*/ell* fails while the sound lower bound
        # and the witness-cut upper bound both hold (see repro.core.relation).
        from repro.graphs import bimodal_latency, weighted_erdos_renyi

        graph = weighted_erdos_renyi(n=12, p=0.4, model=bimodal_latency(1, 16, 0.5), seed=7)
        report = check_theorem5(graph)
        assert report.exact
        assert report.lower_holds()
        assert report.witness_upper_holds()
        assert not report.upper_holds()
        assert not report.holds()


class TestTheorem5LargeGraphs:
    def test_estimated_report_is_reasonable(self):
        graph = weighted_erdos_renyi(40, 0.25, seed=3)
        report = check_theorem5(graph, seed=3)
        assert not report.exact
        assert report.phi_star > 0
        assert report.phi_avg > 0
        # The sandwich may be slightly violated by estimation error, but the
        # two quantities must stay within the structural factor 2·L·ℓ*.
        assert report.phi_avg <= 2 * report.upper + 1e-9
        assert report.phi_avg >= report.lower / 2 - 1e-9


class TestValidation:
    def test_degenerate_graphs_rejected(self):
        with pytest.raises(GraphError):
            check_theorem5(WeightedGraph(range(3)))
        with pytest.raises(GraphError):
            check_theorem5(WeightedGraph([0]))
