"""Batch-replication engine: parity, metrics accounting, and dispatch tests.

The load-bearing contract: for every scenario, batched replication ``r``
is **bit-for-bit equal** to the sequential numpy-mode fast-engine run whose
neighbour draws are seeded ``derive_seed(seed, "rep", r)``.  These tests
assert it over the whole bundled scenario library (dynamics, faults, and
flooding included), pin the per-replication metric columns against the
scalar loop, and cover the dispatch/validation surface around ``reps=``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.gossip import PushPullGossip, ReplicatedResult, Task
from repro.graphs import weighted_erdos_renyi
from repro.scenario import (
    ScenarioError,
    ScenarioSpec,
    library_scenario_names,
    load_named_scenario,
    run_scenario,
)
from repro.simulation import (
    BatchEngine,
    BatchPolicySpec,
    EngineSelectionError,
    PolicyCapability,
    replication_rngs,
    resolve_backend,
)

LIBRARY = library_scenario_names()


def trajectory(result):
    """The bit-for-bit comparison key of one replication's run."""
    return (result.rounds_simulated, result.time, result.metrics.as_dict())


def replicated_pair(spec: ScenarioSpec, reps: int):
    """The same replicated scenario on the batch backend and the scalar oracle."""
    batched = run_scenario(spec.patched({"engine": "batch"}), reps=reps)
    sequential = run_scenario(spec.patched({"engine": "fast"}), reps=reps)
    return batched, sequential


# ----------------------------------------------------------------------
# The parity contract, over the whole bundled library
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", LIBRARY)
def test_batch_matches_sequential_numpy_run_per_library_scenario(name):
    spec = load_named_scenario(name)
    batched, sequential = replicated_pair(spec, reps=3)
    assert batched.reps == sequential.reps == 3
    for b, s in zip(batched.results, sequential.results):
        assert trajectory(b) == trajectory(s)
        assert b.metrics.edge_activations == s.metrics.edge_activations


def test_batch_parity_holds_for_one_to_all_with_informed_curve():
    spec = ScenarioSpec(
        name="one-to-all-parity",
        algorithm="push-pull",
        task="one-to-all",
        seed=11,
    )
    batched, sequential = replicated_pair(spec, reps=4)
    for b, s in zip(batched.results, sequential.results):
        assert trajectory(b) == trajectory(s)
        curve = b.details["informed_curve"]
        # The curve starts at the seeded state and ends fully informed at
        # the replication's own completion round.
        assert curve[0] == 1
        assert curve[-1] == spec.graph.n
        assert len(curve) == b.rounds_simulated + 1


def test_batch_replications_are_independent_and_ordered():
    spec = ScenarioSpec(name="ordering", algorithm="push-pull", task="all-to-all", seed=3)
    replicated = run_scenario(spec, reps=5)
    assert isinstance(replicated, ReplicatedResult)
    assert [r.details["rep"] for r in replicated.results] == [0, 1, 2, 3, 4]
    # Independent coin flips: not every replication takes the same time
    # (5 replications of a randomized protocol virtually never tie on
    # every metric; messages differ even when rounds tie).
    assert len({(r.time, r.metrics.messages) for r in replicated.results}) > 1


# ----------------------------------------------------------------------
# Hypothesis: permutation-free exact match on any library scenario
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    name=st.sampled_from(LIBRARY),
    reps=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_batch_rows_match_sequential_rows_exactly(name, reps, seed):
    spec = load_named_scenario(name).patched({"seed": seed})
    algorithm = spec.algorithm
    assert algorithm in ("push-pull", "push", "pull", "flooding", "sir-push-pull")  # all declarative
    batched, sequential = replicated_pair(spec, reps=reps)
    batch_rows = [trajectory(r) for r in batched.results]
    sequential_rows = [trajectory(r) for r in sequential.results]
    # Exact match in replication order — not merely as a multiset.
    assert batch_rows == sequential_rows


# ----------------------------------------------------------------------
# Metrics accounting under batch (suppressed / lost columns)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["crash-pushpull-er48", "churn-crash-pushpull-er48"])
def test_batch_suppressed_and_lost_columns_sum_to_scalar_totals(name):
    spec = load_named_scenario(name)
    reps = 3
    batched, sequential = replicated_pair(spec, reps=reps)
    batch_suppressed = [r.metrics.suppressed_exchanges for r in batched.results]
    batch_lost = [r.metrics.lost_exchanges for r in batched.results]
    assert sum(batch_suppressed) == sum(r.metrics.suppressed_exchanges for r in sequential.results)
    assert sum(batch_lost) == sum(r.metrics.lost_exchanges for r in sequential.results)
    # The run-level details expose the same totals without digging.
    assert batched.details["suppressed_exchanges"] == sum(batch_suppressed)
    assert batched.details["lost_exchanges"] == sum(batch_lost)
    if name == "crash-pushpull-er48":
        assert sum(batch_suppressed) > 0  # the crash scenario actually suppresses


# ----------------------------------------------------------------------
# Aggregation into the Summary spread fields
# ----------------------------------------------------------------------
def test_replicated_aggregate_emits_spread_fields():
    spec = ScenarioSpec(name="agg", algorithm="push-pull", task="all-to-all", seed=1)
    replicated = run_scenario(spec, reps=4)
    aggregate = replicated.aggregate()
    times = replicated.measurements("time")
    for key in ReplicatedResult.MEASURES:
        assert key in aggregate
        assert {f"{key}_min", f"{key}_max", f"{key}_stdev"} <= set(aggregate)
    assert aggregate["time_min"] == min(times)
    assert aggregate["time_max"] == max(times)
    assert aggregate["time_min"] <= aggregate["time"] <= aggregate["time_max"]
    rows = replicated.rows()
    assert len(rows) == 4 and rows[2]["rep"] == 2


def test_single_replication_returns_one_row_without_spread():
    spec = ScenarioSpec(name="single", algorithm="push-pull", task="all-to-all", engine="batch")
    replicated = run_scenario(spec)
    assert isinstance(replicated, ReplicatedResult)
    assert replicated.reps == 1
    assert "time_stdev" not in replicated.aggregate()


# ----------------------------------------------------------------------
# Dispatch and validation
# ----------------------------------------------------------------------
def test_resolve_backend_reps_routing():
    uniform = PolicyCapability.UNIFORM_RANDOM
    assert resolve_backend("auto", uniform, reps=8) == "batch"
    assert resolve_backend("batch", uniform, reps=8) == "batch"
    assert resolve_backend("fast", uniform, reps=8) == "fast"
    with pytest.raises(EngineSelectionError):
        resolve_backend("reference", uniform, reps=8)
    with pytest.raises(EngineSelectionError):
        resolve_backend("auto", PolicyCapability.ARBITRARY_CALLBACK, reps=8)
    with pytest.raises(EngineSelectionError):
        resolve_backend("batch", uniform)  # engine="batch" needs a replication count


def test_scenario_rejects_replication_of_callback_algorithms():
    with pytest.raises(ScenarioError, match="cannot run replicated"):
        ScenarioSpec(name="bad", algorithm="spanner", task="all-to-all", reps=4).validate()
    with pytest.raises(ScenarioError, match="numpy sampling mode"):
        ScenarioSpec(name="bad", algorithm="push-pull", engine="reference", reps=4).validate()
    with pytest.raises(ScenarioError, match="reps"):
        ScenarioSpec(name="bad", algorithm="push-pull", reps=0).validate()


def test_replicated_run_rejects_local_broadcast_and_bad_reps():
    graph = weighted_erdos_renyi(16, 0.5, seed=1)
    with pytest.raises(ValueError):
        PushPullGossip().run(graph, source=graph.nodes()[0], reps=0)
    from repro.graphs.weighted_graph import GraphError

    with pytest.raises(GraphError, match="local broadcast"):
        PushPullGossip(task=Task.LOCAL_BROADCAST).run(graph, reps=2)


def test_batch_policy_spec_validation():
    rngs = tuple(replication_rngs(0, 2))
    BatchPolicySpec(select="uniform-random", gate="all", rngs=rngs)  # valid
    with pytest.raises(ValueError):
        BatchPolicySpec(select="uniform-random", gate="all")  # rngs missing
    with pytest.raises(ValueError):
        BatchPolicySpec(select="round-robin", rngs=rngs)  # deterministic + rngs
    with pytest.raises(ValueError):
        BatchPolicySpec(select="warp", gate="all")
    engine = BatchEngine(weighted_erdos_renyi(8, 0.9, seed=0), reps=3)
    with pytest.raises(ValueError, match="replication rngs"):
        engine.run_batch(
            BatchPolicySpec(select="uniform-random", rngs=rngs),
            stop_mask=lambda eng: eng.all_to_all_complete_mask(),
        )
    with pytest.raises(TypeError):
        engine.run_batch(object(), stop_mask=lambda eng: eng.all_to_all_complete_mask())


def test_replicated_run_does_not_mutate_caller_graph_under_dynamics():
    from repro.graphs.dynamics import markov_churn

    graph = weighted_erdos_renyi(24, 0.4, seed=5)
    frozen = graph.copy()
    dynamics = markov_churn(graph, horizon=40, leave_prob=0.1, rejoin_prob=0.2, seed=9)
    PushPullGossip(task=Task.ALL_TO_ALL).run(graph, seed=2, reps=2, dynamics=dynamics)
    assert sorted(map(repr, graph.edges())) == sorted(map(repr, frozen.edges()))


def test_batch_engine_raises_when_max_rounds_exhausted():
    spec = ScenarioSpec(name="cap", algorithm="push-pull", task="all-to-all", max_rounds=2)
    with pytest.raises(RuntimeError, match="did not reach the stop condition"):
        run_scenario(spec, reps=3)


def test_batch_engine_survives_rounds_beyond_int16_range():
    # The latency sort key is int16; completion rounds must still be
    # computed in python ints, so a run past round 32767 neither wraps
    # (silently losing exchanges) nor overflows — it keeps simulating
    # until the documented RuntimeError at max_rounds.
    graph = weighted_erdos_renyi(4, 1.0, seed=0)
    engine = BatchEngine(graph, reps=1)
    engine.seed_rumor(graph.nodes()[0])
    policy = BatchPolicySpec(
        select="uniform-random", gate="all", rngs=tuple(replication_rngs(0, 1))
    )
    import numpy as np

    with pytest.raises(RuntimeError, match="did not reach the stop condition"):
        engine.run_batch(
            policy, lambda eng: np.zeros(1, dtype=bool), max_rounds=33_000
        )
    assert engine.round == 33_000


def test_batch_parity_beyond_64_rumors_multi_word_planes():
    # 80 rumors force a second uint64 bitplane word, exercising the generic
    # multi-word gather/merge/popcount paths on both sides of the parity.
    spec = ScenarioSpec(
        name="multi-word",
        algorithm="push-pull",
        task="all-to-all",
        seed=6,
    ).patched({"graph.n": 80})
    batched, sequential = replicated_pair(spec, reps=2)
    for b, s in zip(batched.results, sequential.results):
        assert trajectory(b) == trajectory(s)
        assert b.metrics.edge_activations == s.metrics.edge_activations
    assert batched.results[0].metrics.max_payload_size > 64  # really multi-word


def test_batch_parity_under_blocking_exchanges():
    from repro.simulation import FastEngine
    from repro.simulation.rng import make_numpy_rng

    graph = weighted_erdos_renyi(24, 0.3, seed=8)
    reps = 3
    batch = BatchEngine(graph.copy(), reps=reps, blocking=True)
    rumors = batch.seed_all_rumors()
    assert set(rumors) == set(graph.nodes())
    policy = BatchPolicySpec(
        select="uniform-random", gate="all", rngs=tuple(replication_rngs(4, reps))
    )
    batch_metrics = batch.run_batch(policy, lambda eng: eng.all_to_all_complete_mask())
    for rep in range(reps):
        engine = FastEngine(graph.copy(), blocking=True)
        engine.seed_all_rumors()
        from repro.simulation import RoundPolicySpec

        spec = RoundPolicySpec(select="uniform-random", gate="all", rng=make_numpy_rng(4, "rep", rep))
        sequential = engine.run(spec, stop_condition=lambda eng: eng.all_to_all_complete())
        assert batch_metrics[rep].as_dict() == sequential.as_dict()
        assert batch_metrics[rep].edge_activations == sequential.edge_activations


def test_batch_parity_for_directional_gates():
    from repro.gossip import PullGossip, PushGossip

    graph = weighted_erdos_renyi(32, 0.25, seed=12)
    source = graph.nodes()[0]
    for algorithm in (PushGossip(task=Task.ONE_TO_ALL), PullGossip(task=Task.ONE_TO_ALL)):
        batched = algorithm.run(graph, source=source, seed=5, reps=3, engine="batch")
        sequential = algorithm.run(graph, source=source, seed=5, reps=3, engine="fast")
        for b, s in zip(batched.results, sequential.results):
            assert trajectory(b) == trajectory(s)


# ----------------------------------------------------------------------
# Batch shards in the sweep orchestrator
# ----------------------------------------------------------------------
def _batch_sweep(base_seed: int = 7):
    from repro.analysis.experiment import scenario_sweep
    from repro.scenario import GraphSpec

    base = ScenarioSpec(
        name="sweep-base",
        algorithm="push-pull",
        task="all-to-all",
        graph=GraphSpec(family="erdos-renyi", n=24),
    )
    return scenario_sweep(
        "batch-sweep",
        base,
        patches=[{"graph.n": 24}, {"graph.n": 32}],
        repetitions=3,
        base_seed=base_seed,
        batch=True,
    )


def test_batched_sweep_compiles_one_shard_per_case():
    experiment = _batch_sweep()
    shards = experiment.shards()
    assert len(shards) == 2  # one vectorized call per case, not case x rep
    assert [shard.key for shard in shards] == [(0, 0), (1, 0)]


def test_batched_sweep_rows_carry_spread_and_survive_resume(tmp_path):
    from repro.analysis import deterministic_rows

    experiment = _batch_sweep()
    checkpoint = str(tmp_path / "batch-sweep.jsonl")
    first = experiment.run(checkpoint=checkpoint)
    rows = deterministic_rows(first)
    assert len(rows) == 2
    assert {"time", "time_min", "time_max", "time_stdev"} <= set(rows[0])

    calls = 0
    original = experiment.trial

    def counting_trial(case, seed):
        nonlocal calls
        calls += 1
        return original(case, seed)

    experiment.trial = counting_trial
    resumed = experiment.run(checkpoint=checkpoint, resume=True)
    assert calls == 0  # every batch shard was restored from the checkpoint
    assert deterministic_rows(resumed) == rows


def test_batched_sweep_checkpoint_with_wrong_rep_count_is_not_trusted(tmp_path):
    experiment = _batch_sweep()
    checkpoint = str(tmp_path / "batch-sweep.jsonl")
    experiment.run(checkpoint=checkpoint)
    # A stale record written under repetitions=3 must not satisfy a
    # repetitions=4 schedule: the shard re-runs.
    wider = _batch_sweep()
    wider.repetitions = 4
    completed = wider._load_checkpoint(checkpoint)
    assert completed == {}


# ----------------------------------------------------------------------
# SIR push-pull rows: forgetting-protocol parity under replication
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name", ["sir-pushpull-ws96", "sir-pushpull-powerlaw96", "sir-pushpull-kron64"]
)
def test_batch_sir_rows_match_sequential_and_carry_sir_details(name):
    spec = load_named_scenario(name)
    batched, sequential = replicated_pair(spec, reps=3)
    for b, s in zip(batched.results, sequential.results):
        assert trajectory(b) == trajectory(s)
        assert b.metrics.edge_activations == s.metrics.edge_activations
        # The SIR epidemic bookkeeping rides along per replication and
        # matches the sequential oracle field for field.
        for key in ("forget_after", "died_out", "ever_informed", "recovered", "infected"):
            assert b.details[key] == s.details[key], key
        assert b.details["forget_after"] == spec.forget_after
        assert b.details["died_out"] == (not b.complete)
