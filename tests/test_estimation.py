"""Unit tests for repro.core.estimation (sweep-cut conductance estimators)."""

from __future__ import annotations

import pytest

from repro.core import (
    average_weighted_conductance,
    critical_weighted_conductance,
    estimate_average_conductance,
    estimate_critical_conductance,
    estimate_profile,
    estimate_weight_ell_conductance,
    fiedler_ordering,
    weight_ell_conductance,
)
from repro.graphs import (
    GraphError,
    WeightedGraph,
    assign_latencies,
    bimodal_latency,
    clique,
    dumbbell,
    two_cluster_slow_bridge,
    weighted_erdos_renyi,
)


class TestSmallGraphsAreExact:
    def test_small_graph_matches_exact_phi_ell(self, slow_bridge):
        exact = weight_ell_conductance(slow_bridge, 16).value
        estimated = estimate_weight_ell_conductance(slow_bridge, 16)
        assert estimated == pytest.approx(exact)

    def test_small_graph_matches_exact_critical(self, slow_bridge):
        assert estimate_critical_conductance(slow_bridge) == critical_weighted_conductance(slow_bridge)

    def test_small_graph_matches_exact_average(self, slow_bridge):
        assert estimate_average_conductance(slow_bridge) == pytest.approx(
            average_weighted_conductance(slow_bridge).value
        )

    def test_profile_marks_exactness(self, slow_bridge):
        profile = estimate_profile(slow_bridge)
        assert profile.exact
        assert profile.ratio() == pytest.approx(profile.critical_latency / profile.critical_phi)


class TestCandidateLatencies:
    def test_collapsed_candidates_are_present_latencies(self):
        # Regression: with many distinct latencies, classes used to collapse
        # to the synthetic bounds 2^i; the Definition 2 ratio phi_ell/ell then
        # divided by a latency absent from the graph, understating the ratio
        # by up to 2x.  Candidates must be per-class maxima that exist.
        from repro.core.estimation import _MAX_CANDIDATE_LATENCIES, _candidate_latencies

        latencies = [1, 3, 5, 6, 7, 9, 10, 11, 12, 13, 17, 18, 19, 20, 21, 22, 23]
        assert len(latencies) > _MAX_CANDIDATE_LATENCIES
        graph = WeightedGraph(range(len(latencies) + 1))
        for i, ell in enumerate(latencies):
            graph.add_edge(i, i + 1, latency=ell)
        candidates = _candidate_latencies(graph.indexed())
        assert set(candidates) <= set(latencies)
        assert candidates == [1, 3, 7, 13, 23]

    def test_few_distinct_latencies_stay_exact(self):
        from repro.core.estimation import _candidate_latencies

        graph = two_cluster_slow_bridge(5, fast_latency=1, slow_latency=16)
        assert _candidate_latencies(graph.indexed()) == [1, 16]


class TestLargeGraphEstimates:
    def test_estimate_is_upper_bound_of_true_minimum(self):
        # Estimation scans a subset of cuts, so its value can only be >= the
        # true minimum; check it against the obvious bottleneck cut of a
        # large dumbbell (which the sweep should find).
        graph = dumbbell(20, bridge_latency=1)
        estimate = estimate_weight_ell_conductance(graph, 1, seed=1)
        # The bridge cut: one crossing edge over volume ~20*20.
        bottleneck = 1 / (19 * 20 + 2)
        assert estimate <= 5 * bottleneck
        assert estimate > 0

    def test_estimated_profile_on_large_bridge(self):
        graph = two_cluster_slow_bridge(15, fast_latency=1, slow_latency=32, bridges=1)
        profile = estimate_profile(graph, seed=2)
        assert not profile.exact
        assert profile.critical_latency == 32
        assert profile.critical_phi > 0
        assert profile.phi_avg > 0

    def test_estimate_critical_on_er(self):
        graph = weighted_erdos_renyi(40, 0.3, seed=3)
        phi_star, ell_star = estimate_critical_conductance(graph, seed=3)
        assert 0 < phi_star <= 1
        assert ell_star in graph.distinct_latencies()

    def test_estimate_profile_rejects_degenerate(self):
        with pytest.raises(GraphError):
            estimate_profile(WeightedGraph(range(3)))


class TestFiedlerOrdering:
    def test_ordering_is_permutation(self):
        graph = weighted_erdos_renyi(25, 0.2, seed=1)
        ordering = fiedler_ordering(graph)
        assert sorted(ordering) == sorted(graph.nodes())

    def test_ordering_separates_dumbbell_halves(self):
        graph = dumbbell(10, bridge_latency=1)
        ordering = fiedler_ordering(graph)
        first_half = set(ordering[:10])
        left = set(range(10))
        right = set(graph.nodes()) - left
        # The Fiedler ordering should place one clique (almost) entirely first.
        overlap = max(len(first_half & left), len(first_half & right))
        assert overlap >= 9

    def test_tiny_graph_passthrough(self):
        graph = clique(2)
        assert fiedler_ordering(graph) == graph.nodes()


class TestSpectralRewiring:
    def test_profile_carries_lambda2_and_cheeger_interval(self):
        graph = weighted_erdos_renyi(40, 0.3, seed=3)
        profile = estimate_profile(graph, seed=3)
        assert profile.lambda2 is not None and profile.lambda2 > 0
        lower, upper = profile.cheeger_interval()
        assert 0 <= lower < upper

    def test_exact_profile_also_carries_lambda2(self, slow_bridge):
        profile = estimate_profile(slow_bridge)
        assert profile.exact
        assert profile.lambda2 is not None
        # lambda2/2 lower-bounds the true critical conductance (Cheeger).
        assert profile.lambda2 / 2 <= profile.critical_phi + 1e-9

    def test_estimates_are_deterministic_per_seed(self):
        graph = weighted_erdos_renyi(48, 0.25, seed=9)
        first = estimate_profile(graph, seed=5)
        second = estimate_profile(graph, seed=5)
        assert first == second
        # The random-cut sampler is seeded through derive_seed labels, so a
        # different seed legitimately may (not must) change the estimate;
        # the call itself must still succeed.
        estimate_profile(graph, seed=6)

    def test_large_estimate_avoids_dict_materialization(self):
        # A CSR-backed graph beyond the dense threshold routes through the
        # sparse solver and still produces a sane, positive estimate.
        from repro.graphs import constant_latency, erdos_renyi_csr

        graph = erdos_renyi_csr(1500, 10 / 1500, constant_latency(1), seed=2)
        value = estimate_weight_ell_conductance(graph, 1, seed=0)
        assert 0 < value <= 1

    def test_latency_class_weights_match_scalar_helper(self):
        import numpy as np

        from repro.core.estimation import _latency_class_slot_weights
        from repro.core.latency_classes import latency_class_index

        latencies = np.array([1, 2, 3, 4, 5, 8, 9, 16, 17, 100, 1024], dtype=np.int64)
        weights = _latency_class_slot_weights(latencies)
        expected = [0.5 ** latency_class_index(int(lat)) for lat in latencies]
        assert weights == pytest.approx(expected)
