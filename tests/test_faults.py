"""Unit tests for fault injection (repro.simulation.faults)."""

from __future__ import annotations

import pytest

from repro.graphs import GraphError, clique, path_graph, weighted_erdos_renyi
from repro.simulation import (
    FaultPlan,
    FaultyEngine,
    GossipEngine,
    random_crash_plan,
    random_edge_drop_plan,
)
from repro.simulation.rng import make_rng


class TestFaultPlan:
    def test_crash_and_drop_predicates(self):
        plan = FaultPlan(node_crashes={1: 5}, edge_drops={frozenset((0, 2)): 3})
        assert not plan.is_node_crashed(1, 4)
        assert plan.is_node_crashed(1, 5)
        assert not plan.is_edge_dropped(0, 2, 2)
        assert plan.is_edge_dropped(2, 0, 3)
        assert not plan.is_edge_dropped(0, 1, 10)

    def test_surviving_nodes(self):
        graph = clique(4)
        plan = FaultPlan(node_crashes={0: 2, 1: 10})
        assert plan.surviving_nodes(graph, 5) == {1, 2, 3}

    def test_merge_takes_earliest(self):
        a = FaultPlan(node_crashes={0: 5})
        b = FaultPlan(node_crashes={0: 3, 1: 7})
        merged = a.merge(b)
        assert merged.node_crashes == {0: 3, 1: 7}

    def test_random_crash_plan_respects_fraction_and_protection(self):
        graph = clique(20)
        plan = random_crash_plan(graph, crash_fraction=0.5, crash_round=4, seed=1, protect={0})
        assert 0 not in plan.node_crashes
        assert len(plan.node_crashes) == round(0.5 * 19)
        assert all(round_number == 4 for round_number in plan.node_crashes.values())

    def test_random_crash_plan_validation(self):
        with pytest.raises(GraphError):
            random_crash_plan(clique(4), crash_fraction=1.5, crash_round=1)
        with pytest.raises(GraphError):
            random_crash_plan(clique(4), crash_fraction=0.5, crash_round=-1)

    def test_random_edge_drop_plan(self):
        graph = clique(10)
        plan = random_edge_drop_plan(graph, drop_fraction=0.2, drop_round=2, seed=3)
        assert len(plan.edge_drops) == round(0.2 * graph.num_edges)
        with pytest.raises(GraphError):
            random_edge_drop_plan(graph, drop_fraction=-0.1, drop_round=2)


class TestFaultyEngine:
    def test_no_faults_behaves_like_plain_engine(self):
        graph = clique(8)
        rng_a, rng_b = make_rng(1, "a"), make_rng(1, "a")
        plain = GossipEngine(graph)
        plain.seed_all_rumors()
        faulty = FaultyEngine(graph, FaultPlan())
        faulty.seed_all_rumors()
        policy_a = lambda view: rng_a.choice(view.neighbors)
        policy_b = lambda view: rng_b.choice(view.neighbors)
        a = plain.run(policy_a, stop_condition=lambda e: e.all_to_all_complete(), max_rounds=500)
        b = faulty.run(policy_b, stop_condition=lambda e: e.all_to_all_complete(), max_rounds=500)
        assert a.rounds == b.rounds

    def test_crashed_node_never_learns_and_is_excluded(self):
        graph = clique(8)
        plan = FaultPlan(node_crashes={7: 1})
        engine = FaultyEngine(graph, plan)
        engine.seed_all_rumors()
        rng = make_rng(2, "crash")
        engine.run(
            lambda view: rng.choice(view.neighbors),
            stop_condition=lambda e: e.all_to_all_complete(),
            max_rounds=500,
        )
        # Node 7 crashed before exchanging anything: it knows only its own rumor.
        assert engine.knowledge[7].origins() == {7}
        # Survivors completed all-to-all among themselves.
        survivors = plan.surviving_nodes(graph, engine.round)
        for node in survivors:
            assert engine.knowledge[node].origins() >= survivors

    def test_dropped_edge_blocks_dissemination_on_a_path(self):
        graph = path_graph(4)
        plan = FaultPlan(edge_drops={frozenset((1, 2)): 0})
        engine = FaultyEngine(graph, plan)
        rumor = engine.seed_rumor(0)
        rng = make_rng(3, "drop")
        with pytest.raises(RuntimeError):
            engine.run(
                lambda view: rng.choice(view.neighbors),
                stop_condition=lambda e: all(e.knowledge[n].knows(rumor) for n in graph.nodes()),
                max_rounds=200,
            )
        assert not engine.knowledge[3].knows(rumor)

    def test_push_pull_robust_to_moderate_crashes(self):
        graph = weighted_erdos_renyi(24, 0.3, seed=4)
        plan = random_crash_plan(graph, crash_fraction=0.2, crash_round=3, seed=4)
        engine = FaultyEngine(graph, plan)
        engine.seed_all_rumors()
        rng = make_rng(4, "robust")
        metrics = engine.run(
            lambda view: rng.choice(view.neighbors),
            stop_condition=lambda e: e.all_to_all_complete(),
            max_rounds=5000,
        )
        assert metrics.completion_time is not None

    def test_exchange_in_flight_when_crash_happens_is_suppressed(self):
        graph = path_graph(2)
        graph.set_latency(0, 1, 5)
        plan = FaultPlan(node_crashes={1: 3})
        engine = FaultyEngine(graph, plan)
        rumor = engine.seed_rumor(0)
        engine.initiate_exchange(0, 1)
        for _ in range(8):
            engine.step(lambda view: None)
        # The exchange would have completed at round 5, after node 1 crashed.
        assert not engine.knowledge[1].knows(rumor)
