"""Unit tests for fault injection (repro.simulation.faults)."""

from __future__ import annotations

import pytest

from repro.graphs import GraphError, clique, path_graph, weighted_erdos_renyi
from repro.simulation import (
    FaultPlan,
    FaultState,
    FaultyEngine,
    GossipEngine,
    TopologyEvent,
    apply_events,
    compile_fault_plan,
    random_crash_plan,
    random_edge_drop_plan,
)
from repro.simulation.rng import make_rng

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestFaultPlan:
    def test_crash_and_drop_predicates(self):
        plan = FaultPlan(node_crashes={1: 5}, edge_drops={frozenset((0, 2)): 3})
        assert not plan.is_node_crashed(1, 4)
        assert plan.is_node_crashed(1, 5)
        assert not plan.is_edge_dropped(0, 2, 2)
        assert plan.is_edge_dropped(2, 0, 3)
        assert not plan.is_edge_dropped(0, 1, 10)

    def test_surviving_nodes(self):
        graph = clique(4)
        plan = FaultPlan(node_crashes={0: 2, 1: 10})
        assert plan.surviving_nodes(graph, 5) == {1, 2, 3}

    def test_merge_takes_earliest(self):
        a = FaultPlan(node_crashes={0: 5})
        b = FaultPlan(node_crashes={0: 3, 1: 7})
        merged = a.merge(b)
        assert merged.node_crashes == {0: 3, 1: 7}

    def test_random_crash_plan_respects_fraction_and_protection(self):
        graph = clique(20)
        plan = random_crash_plan(graph, crash_fraction=0.5, crash_round=4, seed=1, protect={0})
        assert 0 not in plan.node_crashes
        assert len(plan.node_crashes) == round(0.5 * 19)
        assert all(round_number == 4 for round_number in plan.node_crashes.values())

    def test_random_crash_plan_validation(self):
        with pytest.raises(GraphError):
            random_crash_plan(clique(4), crash_fraction=1.5, crash_round=1)
        with pytest.raises(GraphError):
            random_crash_plan(clique(4), crash_fraction=0.5, crash_round=-1)

    def test_random_edge_drop_plan(self):
        graph = clique(10)
        plan = random_edge_drop_plan(graph, drop_fraction=0.2, drop_round=2, seed=3)
        assert len(plan.edge_drops) == round(0.2 * graph.num_edges)
        with pytest.raises(GraphError):
            random_edge_drop_plan(graph, drop_fraction=-0.1, drop_round=2)


class TestCompileFaultPlan:
    def test_events_land_on_their_rounds(self):
        plan = FaultPlan(
            node_crashes={1: 5, 2: 0},
            edge_drops={frozenset((0, 3)): 4},
        )
        schedule = compile_fault_plan(plan)
        assert [event.kind for event in schedule.events_for_round(5)] == ["node-crash"]
        # Round-0 faults clamp to round 1 (engines only act from round 1).
        assert schedule.events_for_round(1)[0].u == 2
        (drop,) = schedule.events_for_round(4)
        assert drop.kind == "edge-fault" and {drop.u, drop.v} == {0, 3}

    def test_canonical_event_order_is_repr_sorted(self):
        """Same plan content -> same schedule, independent of dict/frozenset
        iteration order (which varies across processes for string labels)."""
        plan_a = FaultPlan(
            node_crashes={"delta": 2, "alpha": 2},
            edge_drops={frozenset(("x", "y")): 2, frozenset(("a", "b")): 2},
        )
        plan_b = FaultPlan(
            node_crashes={"alpha": 2, "delta": 2},
            edge_drops={frozenset(("b", "a")): 2, frozenset(("y", "x")): 2},
        )
        events_a = compile_fault_plan(plan_a).events_for_round(2)
        events_b = compile_fault_plan(plan_b).events_for_round(2)
        assert events_a == events_b
        assert [event.u for event in events_a] == ["alpha", "delta", "a", "x"]

    def test_empty_plan_compiles_to_empty_schedule(self):
        schedule = compile_fault_plan(FaultPlan())
        assert schedule.horizon == 0 and schedule.num_events == 0
        assert FaultPlan().empty

    def test_plan_draws_are_cross_run_stable(self):
        graph = clique(12)
        assert (
            random_crash_plan(graph, 0.5, 2, seed=9).node_crashes
            == random_crash_plan(graph, 0.5, 2, seed=9).node_crashes
        )
        assert (
            random_edge_drop_plan(graph, 0.3, 2, seed=9).edge_drops
            == random_edge_drop_plan(graph, 0.3, 2, seed=9).edge_drops
        )


class TestFaultEvents:
    def test_fault_events_need_a_fault_state(self):
        graph = clique(4)
        with pytest.raises(ValueError, match="FaultState"):
            apply_events(graph, [TopologyEvent("node-crash", 0)])

    def test_fault_events_accumulate_without_touching_the_graph(self):
        graph = clique(4)
        version = graph.version
        faults = FaultState()
        apply_events(
            graph,
            [TopologyEvent("node-crash", 0), TopologyEvent("edge-fault", 1, 2)],
            faults,
        )
        assert graph.version == version  # no CSR resync needed
        assert graph.has_edge(1, 2)  # the edge stays; only deliveries stop
        assert faults.is_crashed(0)
        assert faults.suppresses(1, 2) and faults.suppresses(2, 1)
        assert faults.suppresses(0, 3)  # any exchange touching a crashed node
        assert not faults.suppresses(1, 3)

    def test_edge_fault_event_requires_both_endpoints(self):
        with pytest.raises(ValueError, match="both endpoints"):
            TopologyEvent("edge-fault", 0)

    def test_fault_events_reject_unknown_nodes_on_both_backends(self):
        """A typo'd label must fail loudly — and identically — everywhere.

        Silently ignoring it (as a forgiving graph event would) would turn
        a robustness run fault-free on one backend while the other raised.
        """
        from repro.gossip import PushPullGossip, Task

        plan = FaultPlan(node_crashes={"no-such-node": 2})
        for engine in ("reference", "fast"):
            graph = clique(6)
            with pytest.raises(GraphError, match="no-such-node"):
                PushPullGossip(task=Task.ALL_TO_ALL).run(
                    graph, seed=1, engine=engine, faults=plan, max_rounds=50
                )

    def test_suppressed_exchanges_are_counted_not_messaged(self):
        graph = path_graph(2)
        engine = GossipEngine(graph, dynamics=compile_fault_plan(FaultPlan(node_crashes={1: 1})))
        engine.seed_rumor(0)
        rng = make_rng(0, "suppress")
        for _ in range(4):
            engine.step(lambda view: rng.choice(view.neighbors) if view.neighbors else None)
        assert engine.metrics.suppressed_exchanges > 0
        assert engine.metrics.messages == 0
        assert engine.metrics.activations > 0


class TestFaultyEngine:
    def test_shim_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="dynamics event pipeline"):
            FaultyEngine(clique(4), FaultPlan())

    def test_no_faults_behaves_like_plain_engine(self):
        graph = clique(8)
        rng_a, rng_b = make_rng(1, "a"), make_rng(1, "a")
        plain = GossipEngine(graph)
        plain.seed_all_rumors()
        faulty = FaultyEngine(graph, FaultPlan())
        faulty.seed_all_rumors()
        policy_a = lambda view: rng_a.choice(view.neighbors)
        policy_b = lambda view: rng_b.choice(view.neighbors)
        a = plain.run(policy_a, stop_condition=lambda e: e.all_to_all_complete(), max_rounds=500)
        b = faulty.run(policy_b, stop_condition=lambda e: e.all_to_all_complete(), max_rounds=500)
        assert a.rounds == b.rounds

    def test_crashed_node_never_learns_and_is_excluded(self):
        graph = clique(8)
        plan = FaultPlan(node_crashes={7: 1})
        engine = FaultyEngine(graph, plan)
        engine.seed_all_rumors()
        rng = make_rng(2, "crash")
        engine.run(
            lambda view: rng.choice(view.neighbors),
            stop_condition=lambda e: e.all_to_all_complete(),
            max_rounds=500,
        )
        # Node 7 crashed before exchanging anything: it knows only its own rumor.
        assert engine.knowledge[7].origins() == {7}
        # Survivors completed all-to-all among themselves.
        survivors = plan.surviving_nodes(graph, engine.round)
        for node in survivors:
            assert engine.knowledge[node].origins() >= survivors

    def test_dropped_edge_blocks_dissemination_on_a_path(self):
        graph = path_graph(4)
        plan = FaultPlan(edge_drops={frozenset((1, 2)): 0})
        engine = FaultyEngine(graph, plan)
        rumor = engine.seed_rumor(0)
        rng = make_rng(3, "drop")
        with pytest.raises(RuntimeError):
            engine.run(
                lambda view: rng.choice(view.neighbors),
                stop_condition=lambda e: all(e.knowledge[n].knows(rumor) for n in graph.nodes()),
                max_rounds=200,
            )
        assert not engine.knowledge[3].knows(rumor)

    def test_push_pull_robust_to_moderate_crashes(self):
        graph = weighted_erdos_renyi(24, 0.3, seed=4)
        plan = random_crash_plan(graph, crash_fraction=0.2, crash_round=3, seed=4)
        engine = FaultyEngine(graph, plan)
        engine.seed_all_rumors()
        rng = make_rng(4, "robust")
        metrics = engine.run(
            lambda view: rng.choice(view.neighbors),
            stop_condition=lambda e: e.all_to_all_complete(),
            max_rounds=5000,
        )
        assert metrics.completion_time is not None

    def test_exchange_in_flight_when_crash_happens_is_suppressed(self):
        graph = path_graph(2)
        graph.set_latency(0, 1, 5)
        plan = FaultPlan(node_crashes={1: 3})
        engine = FaultyEngine(graph, plan)
        rumor = engine.seed_rumor(0)
        engine.initiate_exchange(0, 1)
        for _ in range(8):
            engine.step(lambda view: None)
        # The exchange would have completed at round 5, after node 1 crashed.
        assert not engine.knowledge[1].knows(rumor)
