"""Tests for the CSR IndexedGraph core and its cache on WeightedGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import CSRGraph, GraphError, IndexedGraph, WeightedGraph, weighted_erdos_renyi


@pytest.fixture
def labeled_graph() -> WeightedGraph:
    graph = WeightedGraph()
    graph.add_edge("a", "b", 2)
    graph.add_edge("b", "c", 5)
    graph.add_edge("a", "c", 1)
    graph.add_node("d")
    graph.add_edge("d", "a", 3)
    return graph


class TestCSRLayout:
    def test_matches_weighted_graph(self, labeled_graph):
        idx = labeled_graph.indexed()
        assert idx.num_nodes == labeled_graph.num_nodes
        assert idx.num_edges == labeled_graph.num_edges
        for label in labeled_graph.nodes():
            i = idx.index_of(label)
            assert idx.label_of(i) == label
            assert idx.degree(i) == labeled_graph.degree(label)
            # Neighbour order matches the adjacency-map insertion order; the
            # cached sequence is an immutable tuple.
            assert list(idx.neighbor_labels(label)) == labeled_graph.neighbors(label)
            assert isinstance(idx.neighbor_labels(label), tuple)
            assert [idx.labels[j] for j in idx.neighbors(i)] == labeled_graph.neighbors(label)
            for neighbor in labeled_graph.neighbors(label):
                j = idx.index_of(neighbor)
                assert idx.latency_between(i, j) == labeled_graph.latency(label, neighbor)

    def test_indptr_is_consistent(self, labeled_graph):
        idx = labeled_graph.indexed()
        assert idx.indptr[0] == 0
        assert idx.indptr[-1] == len(idx.indices) == len(idx.latencies)
        assert len(idx.indptr) == idx.num_nodes + 1
        # Every undirected edge occupies exactly two directed slots with one id.
        assert len(idx.slot_edge_id) == 2 * idx.num_edges
        assert sorted(set(idx.slot_edge_id)) == list(range(idx.num_edges))

    def test_slot_of_rejects_non_neighbors(self, labeled_graph):
        idx = labeled_graph.indexed()
        with pytest.raises(KeyError):
            idx.slot_of(idx.index_of("b"), idx.index_of("d"))

    def test_random_graph_round_trip(self):
        graph = weighted_erdos_renyi(40, 0.15, seed=2)
        idx = graph.indexed()
        for label in graph.nodes():
            i = idx.index_of(label)
            start, end = idx.neighbor_slice(i)
            slots = list(range(start, end))
            assert [idx.indices[s] for s in slots] == [idx.index_of(v) for v in graph.neighbors(label)]
            assert [idx.latencies[s] for s in slots] == [
                graph.latency(label, v) for v in graph.neighbors(label)
            ]


class TestCaching:
    def test_cache_reuse(self, labeled_graph):
        assert labeled_graph.indexed() is labeled_graph.indexed()

    def test_mutation_invalidates(self, labeled_graph):
        before = labeled_graph.indexed()
        version = labeled_graph.version
        labeled_graph.add_edge("c", "d", 7)
        assert labeled_graph.version > version
        after = labeled_graph.indexed()
        assert after is not before
        assert after.num_edges == before.num_edges + 1

    def test_noop_add_node_keeps_cache(self, labeled_graph):
        before = labeled_graph.indexed()
        labeled_graph.add_node("a")  # already present
        assert labeled_graph.indexed() is before

    def test_set_latency_invalidates(self, labeled_graph):
        before = labeled_graph.indexed()
        labeled_graph.set_latency("a", "b", 9)
        after = labeled_graph.indexed()
        assert after is not before
        assert after.latency_between(after.index_of("a"), after.index_of("b")) == 9

    def test_remove_invalidates(self, labeled_graph):
        labeled_graph.indexed()
        labeled_graph.remove_edge("a", "b")
        assert "b" not in labeled_graph.indexed().neighbor_labels("a")
        labeled_graph.remove_node("d")
        assert labeled_graph.indexed().num_nodes == 3

    def test_direct_construction(self, labeled_graph):
        direct = IndexedGraph(labeled_graph)
        assert direct.num_nodes == labeled_graph.num_nodes


class TestLazySlotEdgeId:
    def test_from_csr_defers_and_matches_dict_build(self):
        graph = weighted_erdos_renyi(40, 0.15, seed=2)
        idx = graph.indexed()
        direct = IndexedGraph.from_csr(idx.labels, idx.indptr, idx.indices, idx.latencies)
        assert direct._slot_edge_id is None  # deferred until first access
        assert direct.num_edges == idx.num_edges
        # The pairing-based lazy build reproduces the dict constructor's
        # first-appearance edge-id order exactly.
        assert np.array_equal(direct.slot_edge_id, idx.slot_edge_id)
        assert direct._slot_edge_id is not None  # memoized

    def test_lazy_build_rejects_asymmetric_arrays(self):
        broken = IndexedGraph.from_csr(
            [0, 1],
            np.array([0, 1, 1], dtype=np.int64),
            np.array([1], dtype=np.int64),  # directed 0->1 with no mirror slot
            np.array([1], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="symmetric"):
            broken.slot_edge_id


class TestCSRGraph:
    @pytest.fixture
    def pair(self):
        dict_graph = weighted_erdos_renyi(36, 0.18, seed=4)
        return dict_graph, CSRGraph.from_weighted(dict_graph)

    def test_reads_match_dict_graph(self, pair):
        dict_graph, csr_graph = pair
        assert csr_graph.num_nodes == dict_graph.num_nodes
        assert csr_graph.num_edges == dict_graph.num_edges
        assert csr_graph.nodes() == dict_graph.nodes()
        assert csr_graph.max_degree() == dict_graph.max_degree()
        assert csr_graph.total_volume() == dict_graph.total_volume()
        assert csr_graph.max_latency() == dict_graph.max_latency()
        assert csr_graph.min_latency() == dict_graph.min_latency()
        assert csr_graph.is_connected() == dict_graph.is_connected()
        for node in dict_graph.nodes():
            assert csr_graph.has_node(node)
            assert csr_graph.degree(node) == dict_graph.degree(node)
            assert csr_graph.neighbors(node) == dict_graph.neighbors(node)
            for nbr in dict_graph.neighbors(node):
                assert csr_graph.has_edge(node, nbr)
                assert csr_graph.latency(node, nbr) == dict_graph.latency(node, nbr)
        assert not csr_graph.has_node("ghost")
        assert not csr_graph.has_edge(0, "ghost")
        with pytest.raises(GraphError):
            csr_graph.degree("ghost")
        missing = next(
            (u, v)
            for u in dict_graph.nodes()
            for v in dict_graph.nodes()
            if u != v and not dict_graph.has_edge(u, v)
        )
        with pytest.raises(GraphError):
            csr_graph.latency(*missing)
        assert csr_graph == dict_graph  # materializes the dicts; still equal

    def test_indexed_snapshot_is_prebuilt_and_bit_identical(self, pair):
        dict_graph, csr_graph = pair
        snapshot = csr_graph.indexed()
        assert snapshot is csr_graph.indexed()  # cached, no rebuild
        reference = dict_graph.indexed()
        assert snapshot.labels == reference.labels
        for attr in ("indptr", "indices", "latencies", "slot_edge_id"):
            assert np.array_equal(getattr(snapshot, attr), getattr(reference, attr)), attr

    def test_vectorized_bfs_detects_disconnection(self):
        parts = WeightedGraph()
        parts.add_edge(0, 1, 1)
        parts.add_edge(2, 3, 1)
        split = CSRGraph.from_weighted(parts)
        assert not split.is_connected()
        assert not parts.is_connected()

    def test_mutation_materialises_then_behaves_like_dict_graph(self, pair):
        dict_graph, csr_graph = pair
        u, v = next(
            (a, b)
            for a in dict_graph.nodes()
            for b in dict_graph.nodes()
            if a != b and not dict_graph.has_edge(a, b)
        )
        csr_graph.add_edge(u, v, 9)
        dict_graph.add_edge(u, v, 9)
        assert csr_graph.version > 0  # snapshot no longer fresh
        assert csr_graph == dict_graph
        assert csr_graph.num_edges == dict_graph.num_edges
        assert csr_graph.latency(u, v) == 9
        assert csr_graph.is_connected() == dict_graph.is_connected()
        after, reference = csr_graph.indexed(), dict_graph.indexed()
        for attr in ("indptr", "indices", "latencies", "slot_edge_id"):
            assert np.array_equal(getattr(after, attr), getattr(reference, attr)), attr
