"""Tests for the CSR IndexedGraph core and its cache on WeightedGraph."""

from __future__ import annotations

import pytest

from repro.graphs import IndexedGraph, WeightedGraph, weighted_erdos_renyi


@pytest.fixture
def labeled_graph() -> WeightedGraph:
    graph = WeightedGraph()
    graph.add_edge("a", "b", 2)
    graph.add_edge("b", "c", 5)
    graph.add_edge("a", "c", 1)
    graph.add_node("d")
    graph.add_edge("d", "a", 3)
    return graph


class TestCSRLayout:
    def test_matches_weighted_graph(self, labeled_graph):
        idx = labeled_graph.indexed()
        assert idx.num_nodes == labeled_graph.num_nodes
        assert idx.num_edges == labeled_graph.num_edges
        for label in labeled_graph.nodes():
            i = idx.index_of(label)
            assert idx.label_of(i) == label
            assert idx.degree(i) == labeled_graph.degree(label)
            # Neighbour order matches the adjacency-map insertion order; the
            # cached sequence is an immutable tuple.
            assert list(idx.neighbor_labels(label)) == labeled_graph.neighbors(label)
            assert isinstance(idx.neighbor_labels(label), tuple)
            assert [idx.labels[j] for j in idx.neighbors(i)] == labeled_graph.neighbors(label)
            for neighbor in labeled_graph.neighbors(label):
                j = idx.index_of(neighbor)
                assert idx.latency_between(i, j) == labeled_graph.latency(label, neighbor)

    def test_indptr_is_consistent(self, labeled_graph):
        idx = labeled_graph.indexed()
        assert idx.indptr[0] == 0
        assert idx.indptr[-1] == len(idx.indices) == len(idx.latencies)
        assert len(idx.indptr) == idx.num_nodes + 1
        # Every undirected edge occupies exactly two directed slots with one id.
        assert len(idx.slot_edge_id) == 2 * idx.num_edges
        assert sorted(set(idx.slot_edge_id)) == list(range(idx.num_edges))

    def test_slot_of_rejects_non_neighbors(self, labeled_graph):
        idx = labeled_graph.indexed()
        with pytest.raises(KeyError):
            idx.slot_of(idx.index_of("b"), idx.index_of("d"))

    def test_random_graph_round_trip(self):
        graph = weighted_erdos_renyi(40, 0.15, seed=2)
        idx = graph.indexed()
        for label in graph.nodes():
            i = idx.index_of(label)
            start, end = idx.neighbor_slice(i)
            slots = list(range(start, end))
            assert [idx.indices[s] for s in slots] == [idx.index_of(v) for v in graph.neighbors(label)]
            assert [idx.latencies[s] for s in slots] == [
                graph.latency(label, v) for v in graph.neighbors(label)
            ]


class TestCaching:
    def test_cache_reuse(self, labeled_graph):
        assert labeled_graph.indexed() is labeled_graph.indexed()

    def test_mutation_invalidates(self, labeled_graph):
        before = labeled_graph.indexed()
        version = labeled_graph.version
        labeled_graph.add_edge("c", "d", 7)
        assert labeled_graph.version > version
        after = labeled_graph.indexed()
        assert after is not before
        assert after.num_edges == before.num_edges + 1

    def test_noop_add_node_keeps_cache(self, labeled_graph):
        before = labeled_graph.indexed()
        labeled_graph.add_node("a")  # already present
        assert labeled_graph.indexed() is before

    def test_set_latency_invalidates(self, labeled_graph):
        before = labeled_graph.indexed()
        labeled_graph.set_latency("a", "b", 9)
        after = labeled_graph.indexed()
        assert after is not before
        assert after.latency_between(after.index_of("a"), after.index_of("b")) == 9

    def test_remove_invalidates(self, labeled_graph):
        labeled_graph.indexed()
        labeled_graph.remove_edge("a", "b")
        assert "b" not in labeled_graph.indexed().neighbor_labels("a")
        labeled_graph.remove_node("d")
        assert labeled_graph.indexed().num_nodes == 3

    def test_direct_construction(self, labeled_graph):
        direct = IndexedGraph(labeled_graph)
        assert direct.num_nodes == labeled_graph.num_nodes
